"""Well-formedness of recursive JSL expressions (Section 5.3).

The paper's condition: build the *precedence graph* with one node per
definition symbol and an edge ``gamma_i -> gamma_j`` whenever
``gamma_j`` occurs in the body of ``gamma_i`` **not** under the scope
of a modal operator.  The expression is well-formed iff that graph is
acyclic.  (Example 3: ``gamma = ~gamma`` is ill-formed; the even-depth
expression of Example 2 is well-formed because every reference is
modal-guarded.)
"""

from __future__ import annotations

from repro.errors import WellFormednessError
from repro.jsl import ast

__all__ = [
    "unguarded_refs",
    "precedence_graph",
    "check_well_formed",
    "is_well_formed",
    "topological_order",
    "find_cycle",
]


def unguarded_refs(formula: ast.Formula) -> set[str]:
    """References occurring outside the scope of any modal operator."""
    refs: set[str] = set()
    stack: list[ast.Formula] = [formula]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Ref):
            refs.add(current.name)
        elif isinstance(current, ast.Not):
            stack.append(current.operand)
        elif isinstance(current, (ast.And, ast.Or)):
            stack.append(current.left)
            stack.append(current.right)
        # Modal operators guard their body: do not descend.
    return refs


def precedence_graph(expression: ast.RecursiveJSL) -> dict[str, set[str]]:
    """The precedence graph as an adjacency map."""
    names = {name for name, _body in expression.definitions}
    graph: dict[str, set[str]] = {}
    for name, body in expression.definitions:
        targets = unguarded_refs(body) & names
        graph[name] = targets
    return graph


def find_cycle(graph: dict[str, set[str]]) -> list[str] | None:
    """A cycle in the graph, as a list of names, or ``None``.

    Shared by JSL recursion and JSON Schema ``$ref`` well-formedness
    (their precedence graphs have the same shape).
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in graph}
    parent: dict[str, str] = {}
    for root in graph:
        if colour[root] != WHITE:
            continue
        stack: list[tuple[str, list[str]]] = [(root, sorted(graph[root]))]
        colour[root] = GRAY
        while stack:
            name, targets = stack[-1]
            if targets:
                target = targets.pop(0)
                if colour.get(target, BLACK) == GRAY:
                    # Reconstruct the cycle target -> ... -> name -> target.
                    cycle = [target]
                    current = name
                    while current != target:
                        cycle.append(current)
                        current = parent[current]
                    cycle.reverse()
                    return cycle
                if colour.get(target, BLACK) == WHITE:
                    colour[target] = GRAY
                    parent[target] = name
                    stack.append((target, sorted(graph[target])))
            else:
                colour[name] = BLACK
                stack.pop()
    return None


def check_well_formed(expression: ast.RecursiveJSL) -> None:
    """Raise :class:`WellFormednessError` if the expression is ill-formed.

    Also rejects references to undefined symbols, which the paper's
    definition implicitly assumes away.
    """
    names = {name for name, _body in expression.definitions}
    if len(names) != len(expression.definitions):
        raise WellFormednessError("duplicate definition names")
    for name, body in expression.definitions:
        undefined = ast.refs_in(body) - names
        if undefined:
            raise WellFormednessError(
                f"definition {name!r} references undefined symbols: "
                f"{sorted(undefined)}"
            )
    undefined = ast.refs_in(expression.base) - names
    if undefined:
        raise WellFormednessError(
            f"base expression references undefined symbols: {sorted(undefined)}"
        )
    cycle = find_cycle(precedence_graph(expression))
    if cycle is not None:
        raise WellFormednessError(
            "cyclic (unguarded) precedence graph: " + " -> ".join(cycle + [cycle[0]])
        )


def is_well_formed(expression: ast.RecursiveJSL) -> bool:
    try:
        check_well_formed(expression)
    except WellFormednessError:
        return False
    return True


def topological_order(expression: ast.RecursiveJSL) -> list[str]:
    """Definition names ordered so unguarded dependencies come first.

    If ``gamma_i``'s body mentions ``gamma_j`` unguarded, then
    ``gamma_j`` precedes ``gamma_i``.  Requires well-formedness.
    """
    graph = precedence_graph(expression)
    order: list[str] = []
    visited: set[str] = set()
    for root in graph:
        if root in visited:
            continue
        # Iterative post-order DFS: dependencies first.
        stack: list[tuple[str, bool]] = [(root, False)]
        while stack:
            name, expanded = stack.pop()
            if expanded:
                order.append(name)
                continue
            if name in visited:
                continue
            visited.add(name)
            stack.append((name, True))
            for target in sorted(graph[name], reverse=True):
                if target not in visited:
                    stack.append((target, False))
    return order
