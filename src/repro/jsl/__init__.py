"""JSON Schema Logic (Section 5 of the paper).

* :mod:`repro.jsl.ast` -- formulas, node tests, recursive expressions;
* :mod:`repro.jsl.parser` -- a concrete text syntax;
* :mod:`repro.jsl.evaluator` -- Proposition 6 evaluation;
* :mod:`repro.jsl.recursion` -- precedence graphs and well-formedness;
* :mod:`repro.jsl.unfold` -- the paper's rewriting semantics (reference);
* :mod:`repro.jsl.bottom_up` -- Proposition 9 PTIME evaluation;
* :mod:`repro.jsl.satisfiability` -- the Proposition 7/10 engine.
"""

from repro.jsl.ast import (
    And,
    BoxIdx,
    BoxKey,
    DiaIdx,
    DiaKey,
    Formula,
    Not,
    Or,
    RecursiveJSL,
    Ref,
    TestAtom,
    Top,
    bottom,
    conj,
    disj,
    formula_size,
    is_deterministic,
    modal_depth,
    refs_in,
    subformulas,
    uses_unique,
)
from repro.jsl.bottom_up import RecursiveJSLEvaluator, satisfies_recursive
from repro.jsl.evaluator import JSLEvaluator, nodes_satisfying, satisfies
from repro.jsl.parser import parse_jsl, parse_jsl_formula
from repro.jsl.recursion import (
    check_well_formed,
    is_well_formed,
    precedence_graph,
    topological_order,
)
from repro.jsl.unfold import satisfies_by_unfolding, unfold

__all__ = [
    "Formula",
    "Top",
    "Not",
    "And",
    "Or",
    "TestAtom",
    "DiaKey",
    "BoxKey",
    "DiaIdx",
    "BoxIdx",
    "Ref",
    "RecursiveJSL",
    "bottom",
    "conj",
    "disj",
    "formula_size",
    "subformulas",
    "refs_in",
    "uses_unique",
    "is_deterministic",
    "modal_depth",
    "JSLEvaluator",
    "nodes_satisfying",
    "satisfies",
    "RecursiveJSLEvaluator",
    "satisfies_recursive",
    "satisfies_by_unfolding",
    "unfold",
    "check_well_formed",
    "is_well_formed",
    "precedence_graph",
    "topological_order",
    "parse_jsl",
    "parse_jsl_formula",
]
