"""The paper's rewriting semantics for recursive JSL (Section 5.3).

Given a tree ``J`` of height ``h`` and a well-formed recursive
expression, ``unfold_J(psi)`` replaces every definition symbol by its
body until each remaining symbol sits under at least ``h + 1`` modal
operators, then replaces the survivors by ``K`` (falsity).  The paper
then *defines* ``J |= Delta  iff  J |= unfold_J(psi)``.

This construction can blow up exponentially in the query size -- the
paper notes it "leads to very inefficient evaluation algorithms" and
replaces it by the bottom-up PTIME procedure of Proposition 9
(:mod:`repro.jsl.bottom_up`).  We keep it as the reference semantics
for differential testing and for the Proposition 9 benchmark.
"""

from __future__ import annotations

from repro.errors import WellFormednessError
from repro.jsl import ast
from repro.jsl.evaluator import JSLEvaluator
from repro.jsl.recursion import check_well_formed
from repro.model.tree import JSONTree

__all__ = ["unfold", "satisfies_by_unfolding"]


def unfold(expression: ast.RecursiveJSL, height: int) -> ast.Formula:
    """``unfold_J(psi)`` for trees of the given ``height``.

    Symbols whose expansion would sit under more than ``height`` modal
    operators are replaced by falsity; well-formedness guarantees the
    replacement terminates.
    """
    check_well_formed(expression)
    definitions = expression.definition_map()

    # Guard against pathological inputs: each level of expansion can at
    # most multiply the formula by the largest definition body, so the
    # result is bounded by |Delta|^(h+2).  We rebuild formulas
    # recursively over the (bounded) expansion structure.
    def expand(formula: ast.Formula, depth: int) -> ast.Formula:
        if isinstance(formula, ast.Ref):
            if depth > height:
                return ast.bottom()
            body = definitions.get(formula.name)
            if body is None:
                raise WellFormednessError(f"undefined symbol {formula.name!r}")
            return expand(body, depth)
        if isinstance(formula, (ast.Top, ast.TestAtom)):
            return formula
        if isinstance(formula, ast.Not):
            return ast.Not(expand(formula.operand, depth))
        if isinstance(formula, ast.And):
            return ast.And(expand(formula.left, depth), expand(formula.right, depth))
        if isinstance(formula, ast.Or):
            return ast.Or(expand(formula.left, depth), expand(formula.right, depth))
        if isinstance(formula, ast.DiaKey):
            return ast.DiaKey(formula.lang, expand(formula.body, depth + 1))
        if isinstance(formula, ast.BoxKey):
            return ast.BoxKey(formula.lang, expand(formula.body, depth + 1))
        if isinstance(formula, ast.DiaIdx):
            return ast.DiaIdx(
                formula.low, formula.high, expand(formula.body, depth + 1)
            )
        if isinstance(formula, ast.BoxIdx):
            return ast.BoxIdx(
                formula.low, formula.high, expand(formula.body, depth + 1)
            )
        raise TypeError(f"unknown JSL formula {formula!r}")

    return expand(expression.base, 0)


def satisfies_by_unfolding(
    tree: JSONTree,
    expression: ast.RecursiveJSL,
    node: int | None = None,
    *,
    exact_unique: bool = False,
) -> bool:
    """Reference evaluation: ``J |= Delta`` via ``unfold_J``.

    Exponential in general; use :func:`repro.jsl.bottom_up.
    satisfies_recursive` outside of tests.
    """
    target = tree.root if node is None else node
    height = tree.height(target)
    formula = unfold(expression, height)
    return JSLEvaluator(tree, exact_unique=exact_unique).satisfies(formula, target)
