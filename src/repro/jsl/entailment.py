"""Bounded-model entailment over (recursive) JSL formulas.

The semantic optimizer (:mod:`repro.query.optimizer`) asks two kinds of
question about a collection schema ``S`` and a query formula ``Q``,
both phrased as satisfiability through :func:`repro.jsl.satisfiability.
jsl_satisfiable`:

* **emptiness** -- ``S ^ Q`` unsatisfiable means no document the schema
  admits can match the query, so the answer is empty;
* **entailment** -- ``S ^ ~Q`` unsatisfiable means every document the
  schema admits matches ``Q``, so per-document verification of ``Q``
  can be dropped.

Both operands may be :class:`~repro.jsl.ast.RecursiveJSL` (schemas with
``definitions``, star translations from Theorem 2), so conjunction and
negation must merge two definition lists without capturing each
other's reference names: :func:`conjoin` renames every definition (and
every :class:`~repro.jsl.ast.Ref` into it) apart before combining.

The solver is sound but bounded: :func:`unsat` trusts an UNSAT answer
only when the solver reports ``complete=True``; an incomplete run (or
a SAT answer) is "not proven", never a verdict.  Callers therefore get
``(proved, complete)`` and must fall through to the unoptimized path
on ``proved=False`` -- which keeps every optimizer decision a pure
performance question, never a correctness one.
"""

from __future__ import annotations

from repro.jsl import ast
from repro.jsl.satisfiability import SatResult, SolverConfig, jsl_satisfiable

__all__ = ["conjoin", "negate", "unsat", "entails"]

JSL = "ast.Formula | ast.RecursiveJSL"


def _rename_refs(formula: ast.Formula, mapping: dict[str, str]) -> ast.Formula:
    """The formula with every ``Ref`` renamed through ``mapping``."""
    if isinstance(formula, ast.Ref):
        renamed = mapping.get(formula.name)
        return formula if renamed is None else ast.Ref(renamed)
    if isinstance(formula, ast.Not):
        return ast.Not(_rename_refs(formula.operand, mapping))
    if isinstance(formula, ast.And):
        return ast.And(
            _rename_refs(formula.left, mapping),
            _rename_refs(formula.right, mapping),
        )
    if isinstance(formula, ast.Or):
        return ast.Or(
            _rename_refs(formula.left, mapping),
            _rename_refs(formula.right, mapping),
        )
    if isinstance(formula, ast.DiaKey):
        return ast.DiaKey(formula.lang, _rename_refs(formula.body, mapping))
    if isinstance(formula, ast.BoxKey):
        return ast.BoxKey(formula.lang, _rename_refs(formula.body, mapping))
    if isinstance(formula, ast.DiaIdx):
        return ast.DiaIdx(
            formula.low, formula.high, _rename_refs(formula.body, mapping)
        )
    if isinstance(formula, ast.BoxIdx):
        return ast.BoxIdx(
            formula.low, formula.high, _rename_refs(formula.body, mapping)
        )
    # Top / TestAtom: no references below.
    return formula


def _split(
    operand: "ast.Formula | ast.RecursiveJSL",
) -> tuple[tuple[tuple[str, ast.Formula], ...], ast.Formula]:
    if isinstance(operand, ast.RecursiveJSL):
        return operand.definitions, operand.base
    return (), operand


def _apart(
    operands: "list[ast.Formula | ast.RecursiveJSL]",
) -> tuple[list[tuple[str, ast.Formula]], list[ast.Formula]]:
    """Each operand with its definitions renamed apart from the others.

    Definition names are rewritten to ``_e{i}_{name}`` per operand, so
    two schemas both defining ``node`` (or a schema and a Theorem-2
    star translation both using generated names) never capture each
    other's references when their definition lists concatenate.
    """
    definitions: list[tuple[str, ast.Formula]] = []
    bases: list[ast.Formula] = []
    for position, operand in enumerate(operands):
        defs, base = _split(operand)
        mapping = {name: f"_e{position}_{name}" for name, _body in defs}
        definitions.extend(
            (mapping[name], _rename_refs(body, mapping)) for name, body in defs
        )
        bases.append(_rename_refs(base, mapping))
    return definitions, bases


def conjoin(
    left: "ast.Formula | ast.RecursiveJSL",
    right: "ast.Formula | ast.RecursiveJSL",
) -> "ast.Formula | ast.RecursiveJSL":
    """``left ^ right`` with hygienically merged definition lists."""
    definitions, (left_base, right_base) = _apart([left, right])
    base = ast.And(left_base, right_base)
    if not definitions:
        return base
    return ast.RecursiveJSL(tuple(definitions), base)


def negate(
    operand: "ast.Formula | ast.RecursiveJSL",
) -> "ast.Formula | ast.RecursiveJSL":
    """``~operand``, negating only the base of a recursive expression.

    Sound because recursive-JSL definitions are just named formulas
    (references resolve to their bodies, not to fixpoints over the
    negation): negating the base negates exactly the defined property.
    """
    if isinstance(operand, ast.RecursiveJSL):
        return ast.RecursiveJSL(operand.definitions, ast.Not(operand.base))
    return ast.Not(operand)


def unsat(
    formula: "ast.Formula | ast.RecursiveJSL",
    config: SolverConfig | None = None,
) -> tuple[bool, bool]:
    """``(proved_unsat, complete)`` for a formula, trusting the solver
    only when it finished inside its resource bounds.

    ``(True, True)``: genuinely unsatisfiable.  ``(False, True)``: a
    witness exists.  ``(False, False)``: the solver gave up -- the
    caller must fall through, and may record the timeout.
    """
    result: SatResult = jsl_satisfiable(formula, config)
    if result.satisfiable:
        return False, True
    return result.complete, result.complete


def entails(
    premise: "ast.Formula | ast.RecursiveJSL",
    conclusion: "ast.Formula | ast.RecursiveJSL",
    config: SolverConfig | None = None,
) -> tuple[bool, bool]:
    """``(proved, complete)`` for ``premise |= conclusion``.

    Reduction: the premise entails the conclusion exactly when
    ``premise ^ ~conclusion`` is unsatisfiable.
    """
    return unsat(conjoin(premise, negate(conclusion)), config)
