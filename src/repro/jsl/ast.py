"""Abstract syntax of the JSON Schema Logic (Definition 2).

The grammar of the paper::

    phi, psi :=  T  |  ~phi  |  phi ^ psi  |  phi v psi
              |  psi in NodeTests
              |  BOX_e phi   |  BOX_{i:j} phi      (universal modalities)
              |  DIA_e phi   |  DIA_{i:j} phi      (existential modalities)

where ``e`` ranges over regular key languages and ``i <= j`` over index
intervals (``j`` may be ``+inf``).  Key modalities quantify over
object-child edges, index modalities over array-child edges.

Section 5.3 adds *recursive* JSL: a list of definitions
``gamma_i = phi_i`` over an extended syntax with reference symbols,
plus a base expression, subject to the well-formedness condition that
the precedence graph (edges to references **not** under a modal
operator) is acyclic.  That is :class:`RecursiveJSL` here; the
well-formedness machinery lives in :mod:`repro.jsl.recursion`.

Node tests are shared with JNL through :mod:`repro.logic.nodetests`.
Index intervals are 0-based (the paper is 1-based).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.automata.keylang import KeyLang
from repro.logic.nodetests import NodeTest

__all__ = [
    "Formula",
    "Top",
    "Not",
    "And",
    "Or",
    "TestAtom",
    "DiaKey",
    "BoxKey",
    "DiaIdx",
    "BoxIdx",
    "Ref",
    "RecursiveJSL",
    "bottom",
    "conj",
    "disj",
    "formula_size",
    "subformulas",
    "refs_in",
    "uses_unique",
    "is_deterministic",
    "modal_depth",
]


class Formula:
    """Base class of JSL formulas."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Top(Formula):
    """``T``: true everywhere."""


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class TestAtom(Formula):
    """An atomic predicate from NodeTests."""

    test: NodeTest


@dataclass(frozen=True)
class DiaKey(Formula):
    """``DIA_e phi``: some key in ``e`` leads to a child satisfying phi."""

    lang: KeyLang
    body: Formula


@dataclass(frozen=True)
class BoxKey(Formula):
    """``BOX_e phi``: every key in ``e`` leads to a child satisfying phi."""

    lang: KeyLang
    body: Formula


@dataclass(frozen=True)
class DiaIdx(Formula):
    """``DIA_{i:j} phi``: some position in ``[i, j]`` satisfies phi."""

    low: int
    high: int | None  # None encodes +inf
    body: Formula


@dataclass(frozen=True)
class BoxIdx(Formula):
    """``BOX_{i:j} phi``: every position in ``[i, j]`` satisfies phi."""

    low: int
    high: int | None
    body: Formula


@dataclass(frozen=True)
class Ref(Formula):
    """A reference ``gamma`` to a recursive definition."""

    name: str


@dataclass(frozen=True)
class RecursiveJSL:
    """A recursive JSL expression: definitions plus a base expression.

    ``definitions`` maps each symbol to its defining formula; formulas
    may mention any symbol through :class:`Ref`.  Use
    :func:`repro.jsl.recursion.check_well_formed` before evaluating.
    """

    definitions: tuple[tuple[str, Formula], ...]
    base: Formula

    @staticmethod
    def make(definitions: dict[str, Formula], base: Formula) -> "RecursiveJSL":
        return RecursiveJSL(tuple(definitions.items()), base)

    def definition_map(self) -> dict[str, Formula]:
        return dict(self.definitions)

    @property
    def size(self) -> int:
        return formula_size(self.base) + sum(
            formula_size(body) for _name, body in self.definitions
        )


def bottom() -> Formula:
    """``~T`` -- falsity (the paper's ``K`` shorthand)."""
    return Not(Top())


def conj(formulas: Iterable[Formula]) -> Formula:
    items = list(formulas)
    if not items:
        return Top()
    result = items[0]
    for item in items[1:]:
        result = And(result, item)
    return result


def disj(formulas: Iterable[Formula]) -> Formula:
    items = list(formulas)
    if not items:
        return bottom()
    result = items[0]
    for item in items[1:]:
        result = Or(result, item)
    return result


def _children(formula: Formula) -> tuple[Formula, ...]:
    if isinstance(formula, (Top, TestAtom, Ref)):
        return ()
    if isinstance(formula, Not):
        return (formula.operand,)
    if isinstance(formula, (And, Or)):
        return (formula.left, formula.right)
    if isinstance(formula, (DiaKey, BoxKey, DiaIdx, BoxIdx)):
        return (formula.body,)
    raise TypeError(f"unknown JSL formula {formula!r}")


def subformulas(formula: Formula) -> Iterable[Formula]:
    """All subformulas, each once (pre-order)."""
    seen: set[Formula] = set()
    stack = [formula]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        yield current
        stack.extend(_children(current))


def formula_size(formula: Formula) -> int:
    """Number of AST nodes (``|phi|`` in the complexity bounds)."""
    size = 0
    stack = [formula]
    while stack:
        current = stack.pop()
        size += 1
        stack.extend(_children(current))
    return size


def refs_in(formula: Formula) -> set[str]:
    """Names of all referenced definitions."""
    return {
        sub.name for sub in subformulas(formula) if isinstance(sub, Ref)
    }


def uses_unique(formula: Formula) -> bool:
    """Does the formula use the ``Unique`` node test (``uniqueItems``)?"""
    from repro.logic.nodetests import Unique

    return any(
        isinstance(sub, TestAtom) and isinstance(sub.test, Unique)
        for sub in subformulas(formula)
    )


def is_deterministic(formula: Formula) -> bool:
    """Modalities restricted to single words / single positions.

    This is the deterministic fragment the paper obtains "by
    restricting the syntax to use only modal operators BOX_w and
    BOX_i, DIA_w and DIA_i" -- the fragment conjectured in Section 6
    to admit constant-memory streaming evaluation.
    """
    for sub in subformulas(formula):
        if isinstance(sub, (DiaKey, BoxKey)):
            if sub.lang.single_word is None:
                return False
        elif isinstance(sub, (DiaIdx, BoxIdx)):
            if sub.high != sub.low:
                return False
    return True


def modal_depth(formula: Formula) -> int:
    """Maximal nesting depth of modal operators."""
    if isinstance(formula, (DiaKey, BoxKey, DiaIdx, BoxIdx)):
        return 1 + modal_depth(formula.body)
    children = _children(formula)
    if not children:
        return 0
    return max(modal_depth(child) for child in children)
