"""Satisfiability of (recursive) JSL -- Propositions 7 and 10.

The engine implements the construction behind the paper's upper
bounds: a bottom-up fixpoint over *realizable goals*, where a goal is a
set of literals (polarised node tests plus existential/universal
modalities) that must hold simultaneously at one node.  This mirrors
the J-automata emptiness procedure of Proposition 10's proof -- goals
play the role of reachable state sets, and the ``Unique`` predicate is
handled by counting distinct witness trees per goal, the proof's
"how many different trees can be used to reach this state" counter.

Operation:

1. the input formula (after expanding unguarded references, which
   well-formedness makes acyclic) is decomposed into disjunctive
   normal form over literals;
2. rounds of a demand-driven fixpoint try to *realize* each goal as a
   number, string, object or array, consuming witnesses of child goals
   realized in earlier rounds; integer constraints are solved by a
   congruence-window scan, string constraints by DFA products over the
   ``Pattern`` languages, object keys are chosen from boolean
   combinations of the modality key languages, array lengths are
   enumerated within derived bounds;
3. every produced witness is **verified** against its goal (and the
   final witness against the whole input formula) with the evaluators,
   so a SAT answer is unconditionally sound;
4. UNSAT answers are exact whenever no resource bound was hit --
   ``SatResult.complete`` reports this.  The bounds exist because the
   problem is EXPTIME-hard (2EXPTIME with ``Unique``): no
   implementation can be uniformly fast, so the engine is *bounded
   complete* and says so, rather than silently wrong.

``EQ(alpha, beta)`` never reaches this engine: JSL cannot express it,
and JNL satisfiability routes here only for the EQ(alpha,beta)-free
fragment (with recursion, anything more is undecidable -- Prop. 4).
"""

from __future__ import annotations

import json as _json
import math
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.automata.keylang import KeyLang
from repro.errors import SolverLimitError
from repro.jsl import ast
from repro.jsl.bottom_up import RecursiveJSLEvaluator
from repro.jsl.recursion import check_well_formed
from repro.logic import nodetests as nt
from repro.logic.nodetests import node_test_holds
from repro.model.tree import JSONTree

__all__ = ["SolverConfig", "SatResult", "jsl_satisfiable", "value_satisfies"]


@dataclass
class SolverConfig:
    """Resource bounds of the bounded-complete solver."""

    max_rounds: int = 80
    dnf_limit: int = 1024          # max disjuncts per decomposition
    goal_limit: int = 20000        # max distinct goals explored
    int_scan_limit: int = 4096     # integer constraint scan window
    key_samples: int = 24          # candidate keys per flexible diamond
    max_children: int = 12         # array-length / padding exploration slack
    max_demand: int = 64           # max distinct witnesses tracked per goal


@dataclass
class SatResult:
    satisfiable: bool
    witness: JSONTree | None
    complete: bool
    rounds: int
    goals_explored: int

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.satisfiable


# Literal encodings (hashable tuples).
_TEST = "test"
_DIA_KEY = "dia_key"
_BOX_KEY = "box_key"
_DIA_IDX = "dia_idx"
_BOX_IDX = "box_idx"

Goal = frozenset


@dataclass
class _GoalState:
    witnesses: list[Any] = field(default_factory=list)
    seen: set[str] = field(default_factory=set)
    demand: int = 1
    no_more: bool = False  # definitively no further distinct witnesses


def _dump(value: Any) -> str:
    return _json.dumps(value, sort_keys=True, separators=(",", ":"))


def value_satisfies(
    value: Any,
    formula: ast.Formula,
    definitions: tuple[tuple[str, ast.Formula], ...] = (),
) -> bool:
    """Does a Python JSON value satisfy a JSL formula (refs allowed)?"""
    tree = JSONTree.from_value(value)
    expression = ast.RecursiveJSL(definitions, formula)
    return RecursiveJSLEvaluator(tree, expression).satisfies()


class _Solver:
    def __init__(
        self,
        definitions: dict[str, ast.Formula],
        def_tuple: tuple[tuple[str, ast.Formula], ...],
        config: SolverConfig,
    ) -> None:
        self.definitions = definitions
        self.def_tuple = def_tuple
        self.config = config
        self.goals: dict[Goal, _GoalState] = {}
        self.incomplete = False
        self.rounds = 0
        self._dirty = False  # new goals / raised demands since round start
        self._goalset_memo: dict[tuple[ast.Formula, ...], list[Goal]] = {}
        self._pad_lang_memo: dict[frozenset[KeyLang], KeyLang] = {}

    # ==================================================================
    # DNF decomposition.
    # ==================================================================

    def decompose(self, formula: ast.Formula, positive: bool) -> list[Goal]:
        if isinstance(formula, ast.Top):
            return [frozenset()] if positive else []
        if isinstance(formula, ast.Not):
            return self.decompose(formula.operand, not positive)
        if isinstance(formula, ast.And):
            if positive:
                return self._product(
                    self.decompose(formula.left, True),
                    self.decompose(formula.right, True),
                )
            return self._union(
                self.decompose(formula.left, False),
                self.decompose(formula.right, False),
            )
        if isinstance(formula, ast.Or):
            if positive:
                return self._union(
                    self.decompose(formula.left, True),
                    self.decompose(formula.right, True),
                )
            return self._product(
                self.decompose(formula.left, False),
                self.decompose(formula.right, False),
            )
        if isinstance(formula, ast.TestAtom):
            return [frozenset({(_TEST, formula.test, positive)})]
        if isinstance(formula, ast.DiaKey):
            if positive:
                return [frozenset({(_DIA_KEY, formula.lang, formula.body)})]
            return [frozenset({(_BOX_KEY, formula.lang, ast.Not(formula.body))})]
        if isinstance(formula, ast.BoxKey):
            if positive:
                return [frozenset({(_BOX_KEY, formula.lang, formula.body)})]
            return [frozenset({(_DIA_KEY, formula.lang, ast.Not(formula.body))})]
        if isinstance(formula, ast.DiaIdx):
            bounds = (formula.low, formula.high)
            if positive:
                return [frozenset({(_DIA_IDX, bounds, formula.body)})]
            return [frozenset({(_BOX_IDX, bounds, ast.Not(formula.body))})]
        if isinstance(formula, ast.BoxIdx):
            bounds = (formula.low, formula.high)
            if positive:
                return [frozenset({(_BOX_IDX, bounds, formula.body)})]
            return [frozenset({(_DIA_IDX, bounds, ast.Not(formula.body))})]
        if isinstance(formula, ast.Ref):
            body = self.definitions.get(formula.name)
            if body is None:
                raise SolverLimitError(f"undefined symbol {formula.name!r}")
            # Well-formedness makes unguarded expansion acyclic.
            return self.decompose(body, positive)
        raise TypeError(f"unknown JSL formula {formula!r}")

    def _product(self, left: list[Goal], right: list[Goal]) -> list[Goal]:
        # Deduplicate *while* building: reductions like 3SAT produce
        # cross products whose raw size is exponential but whose set of
        # distinct goals stays small (options repeat literals).
        seen: set[Goal] = set()
        out: list[Goal] = []
        for a in left:
            for b in right:
                merged = a | b
                if merged in seen or self._contradictory(merged):
                    continue
                seen.add(merged)
                out.append(merged)
                if len(out) > self.config.dnf_limit:
                    self.incomplete = True
                    return out
        return out

    def _union(self, left: list[Goal], right: list[Goal]) -> list[Goal]:
        out = _dedup(left + right)
        if len(out) > self.config.dnf_limit:
            self.incomplete = True
            out = out[: self.config.dnf_limit]
        return out

    @staticmethod
    def _contradictory(goal: Goal) -> bool:
        tests = {(lit[1], lit[2]) for lit in goal if lit[0] == _TEST}
        return any((test, False) in tests for test, flag in tests if flag)

    # ==================================================================
    # Goal registration / demand.
    # ==================================================================

    def require(self, goal: Goal, demand: int = 1) -> _GoalState:
        state = self.goals.get(goal)
        if state is None:
            if len(self.goals) >= self.config.goal_limit:
                self.incomplete = True
                raise SolverLimitError(
                    f"goal limit {self.config.goal_limit} exceeded"
                )
            state = _GoalState()
            self.goals[goal] = state
            self._dirty = True
        if demand > state.demand:
            state.demand = min(demand, self.config.max_demand)
            self._dirty = True
            if demand > self.config.max_demand:
                self.incomplete = True
        return state

    def goalset(self, bodies: tuple[ast.Formula, ...]) -> list[Goal]:
        """Decomposed goals of a conjunction of formulas (memoised)."""
        cached = self._goalset_memo.get(bodies)
        if cached is None:
            cached = self.decompose(ast.conj(bodies), True)
            self._goalset_memo[bodies] = cached
        return cached

    def witnesses_for(
        self, bodies: tuple[ast.Formula, ...], demand: int = 1
    ) -> list[Any]:
        """Distinct witnesses across the goals of a conjunction."""
        values: list[Any] = []
        seen: set[str] = set()
        for goal in self.goalset(bodies):
            state = self.require(goal, demand)
            for value in state.witnesses:
                key = _dump(value)
                if key not in seen:
                    seen.add(key)
                    values.append(value)
        return values

    # ==================================================================
    # Fixpoint driver.
    # ==================================================================

    def run(self, top_goals: list[Goal]) -> None:
        for goal in top_goals:
            self.require(goal)
        for round_index in range(self.config.max_rounds):
            self.rounds = round_index + 1
            changed = False
            self._dirty = False
            for goal in list(self.goals):
                state = self.goals[goal]
                if state.no_more or len(state.witnesses) >= state.demand:
                    continue
                try:
                    if self._attempt(goal, state):
                        changed = True
                except SolverLimitError:
                    self.incomplete = True
            if not changed and not self._dirty:
                return
        # Fixpoint not reached within the round budget.
        self.incomplete = True

    def _attempt(self, goal: Goal, state: _GoalState) -> bool:
        need = state.demand - len(state.witnesses)
        produced = False
        finals: list[bool] = []
        for generator in (
            self._number_witnesses,
            self._string_witnesses,
            self._object_witnesses,
            self._array_witnesses,
        ):
            values, final = generator(goal, need)
            finals.append(final)
            for value in values:
                key = _dump(value)
                if key in state.seen:
                    continue
                if not self._check_goal_on_value(value, goal):
                    # A heuristic slipped; never accept an unverified
                    # witness.  (Soundness over completeness.)
                    self.incomplete = True
                    continue
                state.seen.add(key)
                state.witnesses.append(value)
                produced = True
                need -= 1
            if need <= 0:
                return produced
        if all(finals) and not produced:
            state.no_more = True
        return produced

    # ==================================================================
    # Literal bookkeeping.
    # ==================================================================

    @staticmethod
    def _split(goal: Goal) -> dict[str, list]:
        split: dict[str, list] = {
            _TEST: [],
            _DIA_KEY: [],
            _BOX_KEY: [],
            _DIA_IDX: [],
            _BOX_IDX: [],
        }
        for lit in goal:
            split[lit[0]].append(lit)
        return split

    # ------------------------------------------------------------------
    # Numbers.
    # ------------------------------------------------------------------

    def _number_witnesses(self, goal: Goal, need: int) -> tuple[list[int], bool]:
        split = self._split(goal)
        if split[_DIA_KEY] or split[_DIA_IDX]:
            return [], True  # numbers have no children
        low, high = 0, None  # naturals
        mods_pos: list[int] = []
        mods_neg: list[int] = []
        pinned: int | None = None
        excluded: set[int] = set()
        for _tag, test, positive in split[_TEST]:
            if isinstance(test, nt.IsNumber):
                if not positive:
                    return [], True
            elif isinstance(test, (nt.IsObject, nt.IsArray, nt.IsString)):
                if positive:
                    return [], True
            elif isinstance(test, (nt.Pattern, nt.Unique)):
                if positive:
                    return [], True
            elif isinstance(test, nt.MinVal):
                if positive:
                    low = max(low, test.bound + 1)
                else:
                    high = test.bound if high is None else min(high, test.bound)
            elif isinstance(test, nt.MaxVal):
                if positive:
                    bound = test.bound - 1
                    high = bound if high is None else min(high, bound)
                else:
                    low = max(low, test.bound)
            elif isinstance(test, nt.MultOf):
                (mods_pos if positive else mods_neg).append(test.divisor)
            elif isinstance(test, nt.MinCh):
                if positive and test.count > 0:
                    return [], True
                if not positive and test.count <= 0:
                    return [], True
            elif isinstance(test, nt.MaxCh):
                if not positive:
                    return [], True  # 0 children <= any natural bound
            elif isinstance(test, nt.EqDocTest):
                doc = test.doc
                if doc.is_number(doc.root):
                    doc_value = int(doc.value(doc.root))
                    if positive:
                        if pinned is not None and pinned != doc_value:
                            return [], True
                        pinned = doc_value
                    else:
                        excluded.add(doc_value)
                elif positive:
                    return [], True
            else:  # pragma: no cover - defensive
                return [], True
        if pinned is not None:
            feasible = (
                pinned >= low
                and (high is None or pinned <= high)
                and all(_is_multiple(pinned, m) for m in mods_pos)
                and not any(_is_multiple(pinned, m) for m in mods_neg)
                and pinned not in excluded
            )
            return ([pinned] if feasible else []), True
        if 0 in mods_pos:
            # MultOf(0) pins the value to 0.
            candidate = 0
            feasible = (
                candidate >= low
                and (high is None or candidate >= low and candidate <= high)
                and all(_is_multiple(candidate, m) for m in mods_pos)
                and not any(_is_multiple(candidate, m) for m in mods_neg)
                and candidate not in excluded
            )
            return ([candidate] if feasible else []), True
        period = 1
        for divisor in mods_pos + [m for m in mods_neg if m > 0]:
            if divisor > 0:
                period = _lcm(period, divisor)
        window = period + len(excluded) + need
        exact_window = window <= self.config.int_scan_limit
        scan_to = low + min(window, self.config.int_scan_limit)
        if high is not None:
            scan_end = min(high, scan_to) if not exact_window else high
            scan_end = min(scan_end, low + self.config.int_scan_limit)
        else:
            scan_end = scan_to
        values: list[int] = []
        value = low
        while value <= scan_end and len(values) < need:
            if (
                all(_is_multiple(value, m) for m in mods_pos)
                and not any(_is_multiple(value, m) for m in mods_neg)
                and value not in excluded
            ):
                values.append(value)
            value += 1
        if len(values) >= need:
            return values, False  # more may exist; irrelevant, demand met
        # Demand unmet: is that definitive?
        if high is not None and scan_end >= high:
            return values, True
        if high is None and exact_window and not values:
            # One full congruence period with no solutions: none exist.
            return values, True
        self.incomplete = True
        return values, False

    # ------------------------------------------------------------------
    # Strings.
    # ------------------------------------------------------------------

    def _string_witnesses(self, goal: Goal, need: int) -> tuple[list[str], bool]:
        split = self._split(goal)
        if split[_DIA_KEY] or split[_DIA_IDX]:
            return [], True
        parts: list[KeyLang] = []
        for _tag, test, positive in split[_TEST]:
            if isinstance(test, nt.IsString):
                if not positive:
                    return [], True
            elif isinstance(test, (nt.IsObject, nt.IsArray, nt.IsNumber)):
                if positive:
                    return [], True
            elif isinstance(test, (nt.MinVal, nt.MaxVal, nt.MultOf, nt.Unique)):
                if positive:
                    return [], True
            elif isinstance(test, nt.Pattern):
                parts.append(test.lang if positive else test.lang.complement())
            elif isinstance(test, nt.MinCh):
                if positive and test.count > 0:
                    return [], True
                if not positive and test.count <= 0:
                    return [], True
            elif isinstance(test, nt.MaxCh):
                if not positive:
                    return [], True
            elif isinstance(test, nt.EqDocTest):
                doc = test.doc
                if doc.is_string(doc.root):
                    word = KeyLang.word(str(doc.value(doc.root)))
                    parts.append(word if positive else word.complement())
                elif positive:
                    return [], True
            else:  # pragma: no cover - defensive
                return [], True
        lang = KeyLang.intersection(parts) if parts else KeyLang.any()
        total = lang.count_words(need + 1)
        values = lang.sample_words(min(need, total))
        if len(values) >= min(need, total):
            # Either demand met, or the language is exactly exhausted.
            return values, total < need
        # Sampling heuristic under-enumerated a non-empty language.
        self.incomplete = True
        return values, False

    # ------------------------------------------------------------------
    # Common container bookkeeping.
    # ------------------------------------------------------------------

    def _container_bounds(
        self, tests: list, is_object: bool
    ) -> tuple[int, int | None, list[JSONTree], JSONTree | None, bool, bool] | None:
        """Shared MinCh/MaxCh/EqDoc/Unique handling for objects/arrays.

        Returns ``(cmin, cmax, excluded_docs, pinned_doc, unique_pos,
        unique_neg)`` or ``None`` when the kind is infeasible.
        """
        cmin, cmax = 0, None
        excluded: list[JSONTree] = []
        pinned: JSONTree | None = None
        unique_pos = False
        unique_neg = False
        for _tag, test, positive in tests:
            if isinstance(test, nt.IsObject):
                if positive != is_object:
                    return None
            elif isinstance(test, nt.IsArray):
                if positive == is_object:
                    return None
            elif isinstance(test, (nt.IsString, nt.IsNumber)):
                if positive:
                    return None
            elif isinstance(test, (nt.Pattern, nt.MinVal, nt.MaxVal, nt.MultOf)):
                if positive:
                    return None
            elif isinstance(test, nt.Unique):
                if positive:
                    if is_object:
                        return None
                    unique_pos = True
                else:
                    if not is_object:
                        unique_neg = True
                    # not-Unique on objects holds trivially.
            elif isinstance(test, nt.MinCh):
                if positive:
                    cmin = max(cmin, test.count)
                else:
                    bound = test.count - 1
                    if bound < 0:
                        return None
                    cmax = bound if cmax is None else min(cmax, bound)
            elif isinstance(test, nt.MaxCh):
                if positive:
                    cmax = test.count if cmax is None else min(cmax, test.count)
                else:
                    cmin = max(cmin, test.count + 1)
            elif isinstance(test, nt.EqDocTest):
                doc = test.doc
                doc_is_object = doc.is_object(doc.root)
                doc_is_array = doc.is_array(doc.root)
                matches_kind = doc_is_object if is_object else doc_is_array
                if positive:
                    if not matches_kind:
                        return None
                    pinned = doc
                elif matches_kind:
                    excluded.append(doc)
            else:  # pragma: no cover - defensive
                return None
        if cmax is not None and cmin > cmax:
            return None
        return cmin, cmax, excluded, pinned, unique_pos, unique_neg

    def _pad_language(self, box_langs: Iterable[KeyLang]) -> KeyLang:
        key = frozenset(box_langs)
        cached = self._pad_lang_memo.get(key)
        if cached is None:
            cached = (
                KeyLang.union(sorted(key, key=id)).complement()
                if key
                else KeyLang.any()
            )
            self._pad_lang_memo[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Objects.
    # ------------------------------------------------------------------

    def _object_witnesses(self, goal: Goal, need: int) -> tuple[list[Any], bool]:
        split = self._split(goal)
        if split[_DIA_IDX]:
            return [], True  # objects have no array edges
        bounds = self._container_bounds(split[_TEST], is_object=True)
        if bounds is None:
            return [], True
        cmin, cmax, excluded, pinned, _unique_pos, _unique_neg = bounds
        if pinned is not None:
            value = pinned.to_value()
            return ([value] if self._check_goal_on_value(value, goal) else []), True

        boxes = [(lit[1], lit[2]) for lit in split[_BOX_KEY]]
        diamonds = [(lit[1], lit[2]) for lit in split[_DIA_KEY]]
        box_langs = [lang for lang, _body in boxes]

        # key -> list of required body formulas.
        children: dict[str, list[ast.Formula]] = {}

        def applicable_boxes(key: str) -> list[ast.Formula]:
            return [body for lang, body in boxes if lang.matches(key)]

        # 1. Word diamonds: the key is forced.
        flexible: list[tuple[KeyLang, ast.Formula]] = []
        for lang, body in diamonds:
            word = lang.single_word
            if word is not None:
                children.setdefault(word, []).append(body)
            else:
                flexible.append((lang, body))
        for word in children:
            children[word].extend(applicable_boxes(word))

        # 2. Flexible diamonds: choose keys.
        exhaustive = True
        for lang, body in flexible:
            if lang.is_empty():
                return [], True
            chosen: str | None = None
            candidates: list[str] = []
            clean = KeyLang.intersection([lang, self._pad_language(box_langs)])
            clean_word = clean.witness()
            if clean_word is not None:
                candidates.append(clean_word)
            candidates.extend(lang.sample_words(self.config.key_samples))
            seen_candidates: set[str] = set()
            registered = 0
            for candidate in candidates:
                if candidate in seen_candidates:
                    continue
                seen_candidates.add(candidate)
                if candidate in children:
                    # Merge into the existing child (keys are unique).
                    trial = tuple(
                        children[candidate] + [body]
                    )
                else:
                    trial = tuple([body] + applicable_boxes(candidate))
                if self.witnesses_for(trial):
                    chosen = candidate
                    break
                registered += 1
                if registered >= 4:
                    break
            if chosen is None:
                # Child goals registered; retry next round.  Completeness
                # is lost only if candidates were truncated.
                if len(seen_candidates) < len(set(candidates)) or not candidates:
                    self.incomplete = True
                return [], False
            if chosen in children:
                children[chosen].append(body)
            else:
                children[chosen] = [body] + applicable_boxes(chosen)

        if cmax is not None and len(children) > cmax:
            # More required keys than allowed children; merging distinct
            # words is impossible.
            if not flexible:
                return [], True
            self.incomplete = True
            return [], False

        # 3. Padding up to cmin.
        pad_keys: list[str] = []
        if len(children) < cmin:
            pad_needed = cmin - len(children)
            pad_lang = self._pad_language(box_langs)
            pads = [
                word
                for word in pad_lang.sample_words(pad_needed + len(children) + 4)
                if word not in children
            ]
            if len(pads) < pad_needed:
                # Fall back to keys that hit some box; their goals must
                # then be realizable.
                extra = [
                    word
                    for word in KeyLang.any().sample_words(
                        pad_needed + len(children) + len(pads) + 8
                    )
                    if word not in children and word not in pads
                ]
                pads.extend(extra)
            if len(pads) < pad_needed:
                self.incomplete = True
                return [], False
            pad_keys = pads[:pad_needed]
            for key in pad_keys:
                children[key] = applicable_boxes(key)

        # 4. Assemble; all child conjunctions need a realized witness.
        assembly: dict[str, Any] = {}
        for key, bodies in children.items():
            options = self.witnesses_for(tuple(bodies))
            if not options:
                return [], False  # registered; next round
            assembly[key] = options[0]

        # 5. Produce distinct variants as demanded.
        del exhaustive
        results = self._object_variants(
            assembly, children, excluded, cmax, box_langs, need
        )
        return results, False

    def _object_variants(
        self,
        assembly: dict[str, Any],
        children: dict[str, list[ast.Formula]],
        excluded: list[JSONTree],
        cmax: int | None,
        box_langs: list[KeyLang],
        need: int,
    ) -> list[Any]:
        excluded_keys = {_dump(doc.to_value()) for doc in excluded}
        results: list[Any] = []
        seen: set[str] = set()

        def offer(value: dict[str, Any]) -> bool:
            key = _dump(value)
            if key in seen or key in excluded_keys:
                return False
            seen.add(key)
            results.append(value)
            return len(results) >= need

        if offer(dict(assembly)):
            return results
        # Variant A: swap child witnesses (raise demands as we go).
        for key, bodies in children.items():
            options = self.witnesses_for(tuple(bodies), min(need + 1, 8))
            for option in options[1:]:
                variant = dict(assembly)
                variant[key] = option
                if offer(variant):
                    return results
        # Variant B: add extra fresh-key children when allowed.
        if cmax is None or len(assembly) < cmax:
            pad_lang = self._pad_language(box_langs)
            fresh = [
                word
                for word in pad_lang.sample_words(need + len(assembly) + 4)
                if word not in assembly
            ]
            filler = self.witnesses_for(())
            if filler:
                for word in fresh:
                    variant = dict(assembly)
                    variant[word] = filler[0]
                    if offer(variant):
                        return results
        return results

    # ------------------------------------------------------------------
    # Arrays.
    # ------------------------------------------------------------------

    def _array_witnesses(self, goal: Goal, need: int) -> tuple[list[Any], bool]:
        split = self._split(goal)
        if split[_DIA_KEY]:
            return [], True  # arrays have no object edges
        bounds = self._container_bounds(split[_TEST], is_object=False)
        if bounds is None:
            return [], True
        cmin, cmax, excluded, pinned, unique_pos, unique_neg = bounds
        if pinned is not None:
            value = pinned.to_value()
            return ([value] if self._check_goal_on_value(value, goal) else []), True

        boxes = [(lit[1], lit[2]) for lit in split[_BOX_IDX]]
        diamonds = [(lit[1], lit[2]) for lit in split[_DIA_IDX]]

        length_min = cmin
        for (low, _high), _body in diamonds:
            length_min = max(length_min, low + 1)
        if unique_neg:
            length_min = max(length_min, 2)
        length_cap = (
            cmax
            if cmax is not None
            else length_min + self.config.max_children
        )
        if cmax is None and length_cap < length_min:
            length_cap = length_min

        excluded_keys = {_dump(doc.to_value()) for doc in excluded}
        results: list[Any] = []
        seen: set[str] = set()
        for length in range(length_min, length_cap + 1):
            built = self._build_array(
                length, boxes, diamonds, unique_pos, unique_neg, need
            )
            for value in built:
                key = _dump(value)
                if key in seen or key in excluded_keys:
                    continue
                seen.add(key)
                results.append(value)
                if len(results) >= need:
                    return results, False
        if cmax is None and length_cap < length_min + self.config.max_children:
            pass
        if cmax is None:
            # Longer arrays might exist beyond the exploration cap.
            if not results:
                self.incomplete = True
            return results, False
        return results, False

    def _build_array(
        self,
        length: int,
        boxes: list[tuple[tuple[int, int | None], ast.Formula]],
        diamonds: list[tuple[tuple[int, int | None], ast.Formula]],
        unique_pos: bool,
        unique_neg: bool,
        need: int,
    ) -> list[Any]:
        def covering_boxes(position: int) -> list[ast.Formula]:
            return [
                body
                for (low, high), body in boxes
                if low <= position and (high is None or position <= high)
            ]

        position_bodies: list[list[ast.Formula]] = [
            covering_boxes(position) for position in range(length)
        ]
        # Assign each diamond to a position in its window.
        for (low, high), body in diamonds:
            window = range(low, length if high is None else min(high + 1, length))
            chosen = None
            for position in window:
                trial = tuple(position_bodies[position] + [body])
                if self.witnesses_for(trial):
                    chosen = position
                    break
            if chosen is None:
                # Register the first window position's goal and retry later.
                for position in window:
                    self.witnesses_for(tuple(position_bodies[position] + [body]))
                    break
                return []
            position_bodies[chosen] = position_bodies[chosen] + [body]

        # Pick witnesses per position.
        if unique_pos:
            used: set[str] = set()
            items: list[Any] = []
            for position in range(length):
                bodies = tuple(position_bodies[position])
                options = self.witnesses_for(bodies, length + 1)
                choice = None
                for option in options:
                    if _dump(option) not in used:
                        choice = option
                        break
                if choice is None:
                    self.require_more(bodies, length + 1)
                    return []
                used.add(_dump(choice))
                items.append(choice)
            return [items]
        items = []
        for position in range(length):
            options = self.witnesses_for(tuple(position_bodies[position]))
            if not options:
                return []
            items.append(options[0])
        if unique_neg:
            # Force a duplicate pair.
            duplicated = self._force_duplicate(position_bodies, items)
            if duplicated is None:
                return []
            items = duplicated
        base = [items]
        # Variants: swap single positions.
        if need > 1 and not unique_neg:
            for position in range(length):
                options = self.witnesses_for(
                    tuple(position_bodies[position]), min(need + 1, 8)
                )
                for option in options[1:]:
                    variant = list(items)
                    variant[position] = option
                    base.append(variant)
        return base

    def require_more(self, bodies: tuple[ast.Formula, ...], demand: int) -> None:
        for goal in self.goalset(bodies):
            self.require(goal, demand)

    def _force_duplicate(
        self,
        position_bodies: list[list[ast.Formula]],
        items: list[Any],
    ) -> list[Any] | None:
        length = len(items)
        if length < 2:
            return None
        # Already duplicated?
        keys = [_dump(item) for item in items]
        if len(set(keys)) < length:
            return items
        for i in range(length):
            for j in range(i + 1, length):
                merged = tuple(position_bodies[i] + position_bodies[j])
                options = self.witnesses_for(merged)
                if options:
                    updated = list(items)
                    updated[i] = options[0]
                    updated[j] = options[0]
                    return updated
        return None

    # ==================================================================
    # Verification.
    # ==================================================================

    def _check_goal_on_value(self, value: Any, goal: Goal) -> bool:
        tree = JSONTree.from_value(value)
        root = tree.root
        for lit in goal:
            tag = lit[0]
            if tag == _TEST:
                if node_test_holds(tree, root, lit[1]) != lit[2]:
                    return False
            elif tag == _DIA_KEY:
                lang, body = lit[1], lit[2]
                if not any(
                    isinstance(label, str)
                    and lang.matches(label)
                    and self._subtree_satisfies(tree, child, body)
                    for label, child in tree.edges(root)
                ):
                    return False
            elif tag == _BOX_KEY:
                lang, body = lit[1], lit[2]
                if not all(
                    self._subtree_satisfies(tree, child, body)
                    for label, child in tree.edges(root)
                    if isinstance(label, str) and lang.matches(label)
                ):
                    return False
            elif tag == _DIA_IDX:
                (low, high), body = lit[1], lit[2]
                if not any(
                    isinstance(label, int)
                    and low <= label
                    and (high is None or label <= high)
                    and self._subtree_satisfies(tree, child, body)
                    for label, child in tree.edges(root)
                ):
                    return False
            elif tag == _BOX_IDX:
                (low, high), body = lit[1], lit[2]
                if not all(
                    self._subtree_satisfies(tree, child, body)
                    for label, child in tree.edges(root)
                    if isinstance(label, int)
                    and low <= label
                    and (high is None or label <= high)
                ):
                    return False
        return True

    def _subtree_satisfies(
        self, tree: JSONTree, node: int, body: ast.Formula
    ) -> bool:
        subtree = tree.subtree(node)
        expression = ast.RecursiveJSL(self.def_tuple, body)
        return RecursiveJSLEvaluator(subtree, expression).satisfies()


def _is_multiple(value: int, divisor: int) -> bool:
    if divisor == 0:
        return value == 0
    return value % divisor == 0


def _lcm(a: int, b: int) -> int:
    return a * b // math.gcd(a, b) if a and b else max(a, b)


def _dedup(goals: list[Goal]) -> list[Goal]:
    seen: set[Goal] = set()
    out: list[Goal] = []
    for goal in goals:
        if goal not in seen:
            seen.add(goal)
            out.append(goal)
    return out


def jsl_satisfiable(
    formula: ast.Formula | ast.RecursiveJSL,
    config: SolverConfig | None = None,
) -> SatResult:
    """Decide satisfiability of a (recursive) JSL formula.

    SAT answers carry a witness tree re-validated by the evaluator;
    ``complete=False`` flags that an UNSAT answer (or a failed witness
    hunt) ran into a configured resource bound.
    """
    config = config or SolverConfig()
    if isinstance(formula, ast.RecursiveJSL):
        check_well_formed(formula)
        definitions = formula.definition_map()
        def_tuple = formula.definitions
        base = formula.base
    else:
        definitions = {}
        def_tuple = ()
        base = formula
    solver = _Solver(definitions, def_tuple, config)
    try:
        top_goals = solver.decompose(base, True)
    except SolverLimitError:
        return SatResult(False, None, False, 0, 0)
    try:
        solver.run(top_goals)
    except SolverLimitError:
        solver.incomplete = True
    witness_value: Any | None = None
    for goal in top_goals:
        state = solver.goals.get(goal)
        if state is not None and state.witnesses:
            witness_value = state.witnesses[0]
            break
    if witness_value is not None:
        if not value_satisfies(witness_value, base, def_tuple):
            raise AssertionError(
                "internal error: satisfiability witness failed verification"
            )
        witness = JSONTree.from_value(witness_value)
        return SatResult(True, witness, True, solver.rounds, len(solver.goals))
    return SatResult(
        False, None, not solver.incomplete, solver.rounds, len(solver.goals)
    )
