"""Direct evaluation of (non-recursive) JSL formulas (Proposition 6).

The evaluator computes node sets bottom-up over the formula structure.
Each subformula costs one pass over the tree's edges, so the total is
``O(|J| * |phi|)`` -- except for ``Unique``, which the paper prices at
``O(|J|^2)`` with naive pairwise subtree comparison.  The default here
uses canonical hashes (linear in practice, still exact); pass
``exact_unique=True`` to reproduce the quadratic behaviour in the
Proposition 6 ablation benchmark.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.jsl import ast
from repro.logic.nodetests import node_test_holds
from repro.model.tree import JSONTree

__all__ = ["JSLEvaluator", "nodes_satisfying", "satisfies"]


class JSLEvaluator:
    """Evaluates non-recursive JSL formulas over one tree, memoised.

    :class:`~repro.jsl.ast.Ref` is rejected here; recursive expressions
    are handled by :mod:`repro.jsl.bottom_up` (PTIME, Proposition 9) or
    :mod:`repro.jsl.unfold` (the paper's rewriting semantics).
    """

    def __init__(self, tree: JSONTree, *, exact_unique: bool = False) -> None:
        self.tree = tree
        self.exact_unique = exact_unique
        self._memo: dict[ast.Formula, frozenset[int]] = {}

    def nodes_satisfying(self, formula: ast.Formula) -> frozenset[int]:
        cached = self._memo.get(formula)
        if cached is not None:
            return cached
        result = self._evaluate(formula)
        self._memo[formula] = result
        return result

    def satisfies(self, formula: ast.Formula, node: int | None = None) -> bool:
        """``(J, n) |= formula``; node defaults to the root (``J |= phi``)."""
        target = self.tree.root if node is None else node
        return target in self.nodes_satisfying(formula)

    def _evaluate(self, formula: ast.Formula) -> frozenset[int]:
        tree = self.tree
        if isinstance(formula, ast.Top):
            return frozenset(tree.nodes())
        if isinstance(formula, ast.Not):
            return frozenset(tree.nodes()) - self.nodes_satisfying(formula.operand)
        if isinstance(formula, ast.And):
            return self.nodes_satisfying(formula.left) & self.nodes_satisfying(
                formula.right
            )
        if isinstance(formula, ast.Or):
            return self.nodes_satisfying(formula.left) | self.nodes_satisfying(
                formula.right
            )
        if isinstance(formula, ast.TestAtom):
            return frozenset(
                node
                for node in tree.nodes()
                if node_test_holds(
                    tree, node, formula.test, exact_unique=self.exact_unique
                )
            )
        if isinstance(formula, ast.DiaKey):
            body = self.nodes_satisfying(formula.body)
            result: set[int] = set()
            for node in tree.nodes():
                for label, child in tree.edges(node):
                    if (
                        isinstance(label, str)
                        and child in body
                        and formula.lang.matches(label)
                    ):
                        result.add(node)
                        break
            return frozenset(result)
        if isinstance(formula, ast.BoxKey):
            body = self.nodes_satisfying(formula.body)
            result = set()
            for node in tree.nodes():
                if all(
                    child in body
                    for label, child in tree.edges(node)
                    if isinstance(label, str) and formula.lang.matches(label)
                ):
                    result.add(node)
            return frozenset(result)
        if isinstance(formula, ast.DiaIdx):
            body = self.nodes_satisfying(formula.body)
            result = set()
            for node in tree.nodes():
                for label, child in tree.edges(node):
                    if (
                        isinstance(label, int)
                        and child in body
                        and formula.low <= label
                        and (formula.high is None or label <= formula.high)
                    ):
                        result.add(node)
                        break
            return frozenset(result)
        if isinstance(formula, ast.BoxIdx):
            body = self.nodes_satisfying(formula.body)
            result = set()
            for node in tree.nodes():
                if all(
                    child in body
                    for label, child in tree.edges(node)
                    if isinstance(label, int)
                    and formula.low <= label
                    and (formula.high is None or label <= formula.high)
                ):
                    result.add(node)
            return frozenset(result)
        if isinstance(formula, ast.Ref):
            raise TranslationError(
                f"reference {formula.name!r} in a non-recursive evaluation; "
                "use repro.jsl.bottom_up for recursive JSL expressions"
            )
        raise TypeError(f"unknown JSL formula {formula!r}")


def nodes_satisfying(
    tree: JSONTree, formula: ast.Formula, *, exact_unique: bool = False
) -> frozenset[int]:
    """One-shot: all nodes satisfying a non-recursive JSL formula."""
    return JSLEvaluator(tree, exact_unique=exact_unique).nodes_satisfying(formula)


def satisfies(
    tree: JSONTree,
    formula: "ast.Formula | ast.RecursiveJSL",
    node: int | None = None,
    *,
    exact_unique: bool = False,
) -> bool:
    """The boolean Evaluation problem ``J |= phi`` (Proposition 6).

    Accepts plain formulas and recursive expressions.  Routed through
    the compiled-validator cache: the formula compiles once into
    point-evaluation closures (top-down from ``node``, visiting only
    the nodes the modalities reach) and repeated calls reuse the
    program.  JSL is downward-looking, so point evaluation agrees with
    the set-at-a-time reference :class:`JSLEvaluator`, which stays
    available (and differentially tested) as the paper-faithful
    interpreter.
    """
    from repro.validate import compile_jsl_validator

    return compile_jsl_validator(
        formula, exact_unique=exact_unique
    ).validate_tree(tree, node)
