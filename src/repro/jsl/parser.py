"""A concrete syntax for JSL formulas and recursive expressions.

Grammar::

    program    :=  definition* formula
    definition :=  'def' NAME ':=' formula ';'
    formula    :=  or
    or         :=  and ('or' and)*
    and        :=  not ('and' not)*
    not        :=  'not' not | primary
    primary    :=  'true' | 'false'
               |  nodetest                       -- see repro.jnl.parser
               |  ('some' | 'all') '(' axis ',' formula ')'
               |  '$' NAME                       -- definition reference
               |  '(' formula ')'
    axis       :=  '.' key  |  '[' index ']'     -- same syntax as JNL

``some``/``all`` are the paper's existential/universal modalities
``DIA``/``BOX``.  Node tests appear bare (no ``test(...)`` wrapper,
they are native atoms here): ``object``, ``array``, ``string``,
``number``, ``unique``, ``pattern("re")``, ``min(i)``, ``max(i)``,
``multipleof(i)``, ``minch(i)``, ``maxch(i)``, ``value(JSON)``.

Example -- the even-depth expression of the paper's Example 2::

    def g1 := all(.*, $g2);
    def g2 := some(.*, true) and all(.*, $g1);
    $g1
"""

from __future__ import annotations

from repro.automata.keylang import KeyLang
from repro.errors import ParseError
from repro.jnl import ast as jnl_ast
from repro.jnl.parser import _Parser
from repro.jsl import ast

__all__ = ["parse_jsl", "parse_jsl_formula"]

_NODE_TEST_WORDS = {
    "object",
    "array",
    "string",
    "number",
    "unique",
    "pattern",
    "value",
    "min",
    "max",
    "multipleof",
    "minch",
    "maxch",
}


class _JSLParser(_Parser):
    """Extends the JNL parser machinery with the JSL grammar."""

    def program(self) -> ast.Formula | ast.RecursiveJSL:
        definitions: list[tuple[str, ast.Formula]] = []
        while self.keyword() == "def":
            self.pos += len("def")
            name = self.ident()
            self.skip_ws()
            if not self.text.startswith(":=", self.pos):
                raise self.error("expected ':=' in definition")
            self.pos += 2
            body = self.formula()
            self.expect(";")
            definitions.append((name, body))
        base = self.formula()
        if definitions:
            return ast.RecursiveJSL(tuple(definitions), base)
        return base

    def formula(self) -> ast.Formula:
        left = self.jsl_conjunction()
        while self.consume_keyword("or"):
            left = ast.Or(left, self.jsl_conjunction())
        return left

    def jsl_conjunction(self) -> ast.Formula:
        left = self.jsl_negation()
        while self.consume_keyword("and"):
            left = ast.And(left, self.jsl_negation())
        return left

    def jsl_negation(self) -> ast.Formula:
        if self.consume_keyword("not"):
            return ast.Not(self.jsl_negation())
        return self.jsl_primary()

    def jsl_primary(self) -> ast.Formula:
        word = self.keyword()
        if word == "true":
            self.pos += len(word)
            return ast.Top()
        if word == "false":
            self.pos += len(word)
            return ast.bottom()
        if word in ("some", "all"):
            self.pos += len(word)
            existential = word == "some"
            self.expect("(")
            modality = self.modality_axis(existential)
            self.expect(",")
            body = self.formula()
            self.expect(")")
            return self.finish_modality(modality, body)
        if word in _NODE_TEST_WORDS:
            return ast.TestAtom(self.node_test())
        if self.peek() == "$":
            self.pos += 1
            return ast.Ref(self.ident())
        if self.try_consume("("):
            inner = self.formula()
            self.expect(")")
            return inner
        raise self.error("expected a JSL formula")

    # -- modalities ---------------------------------------------------------

    def modality_axis(
        self, existential: bool
    ) -> tuple[bool, str, object]:
        char = self.peek()
        if char == ".":
            self.pos += 1
            axis = self.key_axis()
            if isinstance(axis, jnl_ast.Key):
                return (existential, "key", KeyLang.word(axis.word))
            assert isinstance(axis, jnl_ast.KeyRegex)
            return (existential, "key", axis.lang)
        if char == "[":
            self.pos += 1
            axis = self.index_axis()
            self.expect("]")
            if isinstance(axis, jnl_ast.Index):
                if axis.position < 0:
                    raise self.error("JSL index modalities are non-negative")
                return (existential, "index", (axis.position, axis.position))
            assert isinstance(axis, jnl_ast.IndexRange)
            return (existential, "index", (axis.low, axis.high))
        raise self.error("expected a key ('.k') or index ('[i]') axis")

    def finish_modality(
        self, modality: tuple[bool, str, object], body: ast.Formula
    ) -> ast.Formula:
        existential, axis_kind, payload = modality
        if axis_kind == "key":
            assert isinstance(payload, KeyLang)
            return (
                ast.DiaKey(payload, body)
                if existential
                else ast.BoxKey(payload, body)
            )
        low, high = payload  # type: ignore[misc]
        return (
            ast.DiaIdx(low, high, body)
            if existential
            else ast.BoxIdx(low, high, body)
        )


def parse_jsl(text: str) -> ast.Formula | ast.RecursiveJSL:
    """Parse a JSL program (definitions + base, or a bare formula)."""
    parser = _JSLParser(text)
    result = parser.program()
    if not parser.at_end():
        raise ParseError("trailing input after formula", parser.pos)
    return result


def parse_jsl_formula(text: str) -> ast.Formula:
    """Parse a single non-recursive JSL formula."""
    result = parse_jsl(text)
    if isinstance(result, ast.RecursiveJSL):
        raise ParseError("expected a plain formula, found definitions")
    return result
