"""Incremental, event-driven construction of JSON trees.

:class:`TreeBuilder` accepts the same event vocabulary the streaming
tokenizer (:mod:`repro.streaming.events`) produces, so a token stream
can be materialised into a :class:`~repro.model.tree.JSONTree` when an
in-memory representation is wanted.  It enforces the data-model
invariants (unique keys, leaf atomics) as events arrive.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.model.tree import JSONTree, Kind

__all__ = ["TreeBuilder"]

_NO_PARENT = -1


class TreeBuilder:
    """Builds a :class:`JSONTree` from begin/end/value events.

    Usage::

        builder = TreeBuilder()
        builder.start_object()
        builder.key("age")
        builder.number(32)
        builder.end_object()
        tree = builder.result()
    """

    def __init__(self) -> None:
        self._tree = JSONTree()
        # Stack of open container node ids; parallel stack of pending keys.
        self._open: list[int] = []
        self._pending_key: list[str | None] = []
        self._done = False

    # ------------------------------------------------------------------

    def _enter(self, kind: Kind) -> int:
        if self._done:
            raise ModelError("document already complete")
        tree = self._tree
        if not self._open:
            if len(tree) != 0:
                raise ModelError("root already created")
            return tree._new_node(kind, _NO_PARENT, None)
        parent = self._open[-1]
        if tree.kind(parent) is Kind.OBJECT:
            key = self._pending_key[-1]
            if key is None:
                raise ModelError("object member requires a key() event first")
            self._pending_key[-1] = None
            node = tree._new_node(kind, parent, key)
            tree._attach(parent, key, node)
        else:
            index = tree.array_length(parent)
            node = tree._new_node(kind, parent, index)
            tree._attach(parent, index, node)
        return node

    def _finish_if_root(self, node: int) -> None:
        if self._tree.parent(node) is None and not self._open:
            self._done = True

    # ------------------------------------------------------------------
    # Events.
    # ------------------------------------------------------------------

    def start_object(self) -> None:
        node = self._enter(Kind.OBJECT)
        self._open.append(node)
        self._pending_key.append(None)

    def end_object(self) -> None:
        if not self._open or self._tree.kind(self._open[-1]) is not Kind.OBJECT:
            raise ModelError("end_object without a matching start_object")
        if self._pending_key[-1] is not None:
            raise ModelError("dangling key with no value")
        node = self._open.pop()
        self._pending_key.pop()
        self._finish_if_root(node)

    def start_array(self) -> None:
        node = self._enter(Kind.ARRAY)
        self._open.append(node)
        self._pending_key.append(None)

    def end_array(self) -> None:
        if not self._open or self._tree.kind(self._open[-1]) is not Kind.ARRAY:
            raise ModelError("end_array without a matching start_array")
        node = self._open.pop()
        self._pending_key.pop()
        self._finish_if_root(node)

    def key(self, name: str) -> None:
        if not self._open or self._tree.kind(self._open[-1]) is not Kind.OBJECT:
            raise ModelError("key() outside of an object")
        if self._pending_key[-1] is not None:
            raise ModelError("two consecutive keys without a value")
        self._pending_key[-1] = name

    def string(self, value: str) -> None:
        node = self._enter(Kind.STRING)
        self._tree._values[node] = value
        self._finish_if_root(node)

    def number(self, value: int) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ModelError(f"number events carry ints, got {value!r}")
        node = self._enter(Kind.NUMBER)
        self._tree._values[node] = value
        self._finish_if_root(node)

    # ------------------------------------------------------------------

    def result(self) -> JSONTree:
        if not self._done:
            raise ModelError("document is incomplete")
        return self._tree
