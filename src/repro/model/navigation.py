"""JSON navigation instructions (Section 2 of the paper).

The paper observes that *all* JSON systems share two primitives:

* if ``J`` is an object, ``J[key]`` is the value under ``key``;
* if ``J`` is an array, ``J[i]`` is its i-th element (random access).

Crucially there is no instruction to list an object's keys nor to move
between array siblings; this module mirrors exactly that interface.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import NavigationError
from repro.model.tree import JSONTree, JSONValue, Kind

__all__ = ["navigate", "try_navigate", "fetch", "Navigator"]

Step = str | int


def try_navigate(
    tree: JSONTree, steps: Sequence[Step], start: int | None = None
) -> int | None:
    """Follow navigation instructions; ``None`` when any step fails.

    Each step is a key (``str``) applied to an object node or a position
    (``int``, possibly negative) applied to an array node.  A key step
    on a non-object node fails, as does an index step on a non-array
    node -- navigation instructions are typed.
    """
    node: int | None = tree.root if start is None else start
    for step in steps:
        assert node is not None
        if isinstance(step, str):
            node = tree.object_child(node, step)
        else:
            node = tree.array_child(node, step)
        if node is None:
            return None
    return node


def navigate(tree: JSONTree, steps: Sequence[Step], start: int | None = None) -> int:
    """Like :func:`try_navigate` but raises :class:`NavigationError`."""
    node = tree.root if start is None else start
    for position, step in enumerate(steps):
        if isinstance(step, str):
            next_node = tree.object_child(node, step)
        else:
            next_node = tree.array_child(node, step)
        if next_node is None:
            prefix = steps[: position + 1]
            raise NavigationError(
                f"navigation failed at step {step!r} (path so far: {list(prefix)})"
            )
        node = next_node
    return node


def fetch(tree: JSONTree, *steps: Step) -> JSONValue:
    """Navigate and return the reached subtree as a Python value."""
    return tree.to_value(navigate(tree, steps))


class Navigator:
    """A cursor giving the paper's ``J[key]`` / ``J[i]`` notation in Python.

    >>> doc = Navigator.parse('{"name": {"first": "John"}, "age": 32}')
    >>> doc["name"]["first"].value()
    'John'
    >>> doc["age"].value()
    32

    A failed step raises :class:`NavigationError`; use :meth:`get` for
    an optional variant.
    """

    __slots__ = ("tree", "node")

    def __init__(self, tree: JSONTree, node: int | None = None) -> None:
        self.tree = tree
        self.node = tree.root if node is None else node

    @classmethod
    def parse(cls, text: str) -> "Navigator":
        return cls(JSONTree.from_json(text))

    @classmethod
    def from_value(cls, value: JSONValue) -> "Navigator":
        return cls(JSONTree.from_value(value))

    def __getitem__(self, step: Step) -> "Navigator":
        return Navigator(self.tree, navigate(self.tree, [step], self.node))

    def get(self, step: Step) -> "Navigator | None":
        node = try_navigate(self.tree, [step], self.node)
        return None if node is None else Navigator(self.tree, node)

    def follow(self, steps: Iterable[Step]) -> "Navigator":
        return Navigator(self.tree, navigate(self.tree, list(steps), self.node))

    @property
    def kind(self) -> Kind:
        return self.tree.kind(self.node)

    def value(self) -> str | int:
        """Atomic value of a string/number node."""
        return self.tree.value(self.node)

    def to_value(self) -> JSONValue:
        """The whole subtree as a Python value (``json(n)``)."""
        return self.tree.to_value(self.node)

    def json(self) -> JSONTree:
        """The subtree as an independent JSON tree (``json(n)``)."""
        return self.tree.subtree(self.node)

    def __len__(self) -> int:
        return self.tree.num_children(self.node)

    def __repr__(self) -> str:
        return f"Navigator(node={self.node}, kind={self.kind.name})"
