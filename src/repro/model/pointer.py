"""JSON Pointer (RFC 6901) -- the navigation syntax used by ``$ref``.

JSON Schema's recursion mechanism (Section 5.3) fetches definitions with
references such as ``#/definitions/email``.  This module parses that
fragment syntax into navigation steps and resolves them against either
a :class:`~repro.model.tree.JSONTree` or a plain Python value.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import NavigationError, ParseError
from repro.model.tree import JSONTree

__all__ = ["parse_pointer", "resolve_pointer", "resolve_in_value", "pointer_to_steps"]


def parse_pointer(text: str) -> list[str]:
    """Parse a JSON Pointer (optionally preceded by ``#``) into tokens.

    ``~0``/``~1`` escapes are decoded per RFC 6901.  The empty pointer
    refers to the whole document.
    """
    if text.startswith("#"):
        text = text[1:]
    if text == "":
        return []
    if not text.startswith("/"):
        raise ParseError(f"JSON pointer must start with '/': {text!r}")
    tokens = []
    for raw in text[1:].split("/"):
        tokens.append(raw.replace("~1", "/").replace("~0", "~"))
    return tokens


def pointer_to_steps(tokens: Sequence[str]) -> list[str | int]:
    """Convert pointer tokens to navigation steps (digits become indices)."""
    steps: list[str | int] = []
    for token in tokens:
        if token.isdigit():
            steps.append(int(token))
        else:
            steps.append(token)
    return steps


def resolve_pointer(tree: JSONTree, pointer: str, start: int | None = None) -> int:
    """Resolve a pointer against a JSON tree; returns the node id."""
    tokens = parse_pointer(pointer)
    node = tree.root if start is None else start
    for token in tokens:
        child = tree.object_child(node, token)
        if child is None and token.isdigit():
            child = tree.array_child(node, int(token))
        if child is None:
            raise NavigationError(f"pointer {pointer!r} failed at token {token!r}")
        node = child
    return node


def resolve_in_value(value: Any, pointer: str) -> Any:
    """Resolve a pointer against a plain Python JSON value."""
    current = value
    for token in parse_pointer(pointer):
        if isinstance(current, dict):
            if token not in current:
                raise NavigationError(
                    f"pointer {pointer!r}: key {token!r} not found"
                )
            current = current[token]
        elif isinstance(current, list):
            if not token.isdigit() or int(token) >= len(current):
                raise NavigationError(
                    f"pointer {pointer!r}: bad array index {token!r}"
                )
            current = current[int(token)]
        else:
            raise NavigationError(
                f"pointer {pointer!r}: cannot descend into atomic value"
            )
    return current
