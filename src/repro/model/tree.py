"""JSON trees: the paper's formal data model for JSON documents.

Section 3.1 of the paper defines a JSON tree as a structure
``J = (D, Obj, Arr, Str, Int, A, O, val)`` where ``D`` is a tree domain
partitioned into object, array, string and number nodes, ``O`` is the
key-labelled object-child relation, ``A`` the position-labelled
array-child relation, and ``val`` assigns values to string/number
leaves.  The five side conditions of that definition are enforced by
construction here:

1. every object child is reached through exactly one key-labelled edge;
2. keys are unique among the children of an object (determinism);
3. array children are labelled by their position;
4. string and number nodes are leaves;
5. ``val`` is defined exactly on string and number nodes.

The implementation stores the tree in flat arrays indexed by an integer
node id (an *arena*), which keeps traversals allocation-free and lets
every algorithm in the library run iteratively -- the benchmark
workloads include chains far deeper than Python's recursion limit.
"""

from __future__ import annotations

import enum
import json as _json
from typing import Any, Iterable, Iterator

from repro.errors import DuplicateKeyError, ModelError, UnsupportedValueError

__all__ = ["Kind", "JSONTree", "JSONValue"]

# A Python-level JSON value in the paper's abstraction: str, int (natural
# number), list of values, or dict with str keys.
JSONValue = Any


class Kind(enum.IntEnum):
    """The four node types partitioning the tree domain."""

    OBJECT = 0
    ARRAY = 1
    STRING = 2
    NUMBER = 3

    @property
    def is_leaf_kind(self) -> bool:
        return self in (Kind.STRING, Kind.NUMBER)


_NO_PARENT = -1


class JSONTree:
    """An immutable JSON tree over an integer node arena.

    Nodes are identified by dense integer ids; the root is node ``0``.
    Use :meth:`from_value` / :meth:`from_json` to build a tree and
    :meth:`to_value` / :meth:`to_json` to serialise it back.

    The class deliberately exposes *navigation-instruction* primitives
    only (Section 2): one can fetch the value under a key, or the i-th
    element of an array, but there is no sibling traversal.
    """

    __slots__ = (
        "_kinds",
        "_parents",
        "_labels",
        "_obj_children",
        "_arr_children",
        "_values",
        "_hashes",
        "_heights",
        "_preorder",
    )

    def __init__(self) -> None:
        self._kinds: list[Kind] = []
        self._parents: list[int] = []
        # Label of the edge from the parent: str for object children,
        # int for array children, None for the root.
        self._labels: list[str | int | None] = []
        self._obj_children: list[dict[str, int] | None] = []
        self._arr_children: list[list[int] | None] = []
        self._values: list[str | int | None] = []
        self._hashes: list[int] | None = None  # lazily computed by equality
        self._heights: list[int] | None = None
        self._preorder: list[int] | None = None  # lazily computed ranks

    # ------------------------------------------------------------------
    # Construction (used by this module and repro.model.builder only).
    # ------------------------------------------------------------------

    def _new_node(self, kind: Kind, parent: int, label: str | int | None) -> int:
        node = len(self._kinds)
        self._kinds.append(kind)
        self._parents.append(parent)
        self._labels.append(label)
        self._obj_children.append({} if kind is Kind.OBJECT else None)
        self._arr_children.append([] if kind is Kind.ARRAY else None)
        self._values.append(None)
        return node

    def _attach(self, parent: int, label: str | int, child: int) -> None:
        kind = self._kinds[parent]
        if kind is Kind.OBJECT:
            children = self._obj_children[parent]
            assert children is not None
            if label in children:
                raise DuplicateKeyError(str(label))
            children[str(label)] = child
        elif kind is Kind.ARRAY:
            children = self._arr_children[parent]
            assert children is not None
            if label != len(children):
                raise ModelError(
                    f"array children must be appended in order; got position "
                    f"{label}, expected {len(children)}"
                )
            children.append(child)
        else:
            raise ModelError("string and number nodes cannot have children")

    @classmethod
    def from_value(cls, value: JSONValue, *, extended: bool = False) -> "JSONTree":
        """Build a JSON tree from a Python value.

        ``value`` may contain ``dict`` (object), ``list``/``tuple``
        (array), ``str`` and ``int``.  With ``extended=True`` the JSON
        literals outside the paper's abstraction are coerced to strings:
        ``True``/``False``/``None`` become ``"true"``/``"false"``/
        ``"null"``.  Floats are always rejected.

        The construction is iterative, so arbitrarily deep documents are
        supported.
        """
        return cls._from_value(value, extended, None)

    @classmethod
    def from_values(
        cls,
        values: Iterable[JSONValue],
        *,
        extended: bool = False,
        interned: dict[str, str] | None = None,
    ) -> list["JSONTree"]:
        """Batch ingestion: one tree per value, with shared interning.

        Real corpora repeat the same keys and short string atoms across
        every document; building the trees through one shared intern
        table stores a single ``str`` object per distinct key/atom, so
        a corpus costs memory proportional to its *distinct* strings
        and the per-tree key dictionaries hit CPython's identity fast
        path on lookup.  Used by :func:`repro.validate.validate_corpus`,
        the validation benchmarks and the document store.

        ``interned`` lets a long-lived owner (a
        :class:`repro.store.Collection`) pass its own table so interning
        extends *across* batches: documents inserted later share the
        keys of everything ingested before them.
        """
        table: dict[str, str] = {} if interned is None else interned
        return [cls._from_value(value, extended, table) for value in values]

    @classmethod
    def _from_value(
        cls,
        value: JSONValue,
        extended: bool,
        interned: dict[str, str] | None,
    ) -> "JSONTree":
        tree = cls()
        root = tree._new_node(_kind_of(value, extended), _NO_PARENT, None)
        # Work stack of (node_id, python_value) still to expand.
        stack: list[tuple[int, JSONValue]] = [(root, value)]
        while stack:
            node, val = stack.pop()
            kind = tree._kinds[node]
            if kind is Kind.OBJECT:
                for key, sub in val.items():
                    if not isinstance(key, str):
                        raise UnsupportedValueError(
                            f"object keys must be strings, got {type(key).__name__}"
                        )
                    if interned is not None:
                        key = interned.setdefault(key, key)
                    child = tree._new_node(_kind_of(sub, extended), node, key)
                    tree._attach(node, key, child)
                    stack.append((child, sub))
            elif kind is Kind.ARRAY:
                for index, sub in enumerate(val):
                    child = tree._new_node(_kind_of(sub, extended), node, index)
                    tree._attach(node, index, child)
                    stack.append((child, sub))
            elif kind is Kind.STRING:
                text = _coerce_string(val)
                if interned is not None:
                    text = interned.setdefault(text, text)
                tree._values[node] = text
            else:  # Kind.NUMBER
                tree._values[node] = val
        return tree

    @staticmethod
    def value_from_json(text: str) -> JSONValue:
        """Parse JSON text into a Python value, with the strict checks.

        Duplicate keys inside one object raise :class:`DuplicateKeyError`
        (Python's ``json`` silently keeps the last one, which would hide
        violations of the paper's determinism condition); floats are
        rejected outright.  Used by :meth:`from_json` and by batch
        ingestion paths that want strict parsing *before* interned tree
        construction (:meth:`repro.store.Collection.from_json_lines`).
        """

        def pairs_hook(pairs: list[tuple[str, Any]]) -> dict[str, Any]:
            result: dict[str, Any] = {}
            for key, val in pairs:
                if key in result:
                    raise DuplicateKeyError(key)
                result[key] = val
            return result

        def reject_float(text_value: str) -> Any:
            raise UnsupportedValueError(
                f"the paper's JSON abstraction has no floats: {text_value}"
            )

        try:
            return _json.loads(
                text, object_pairs_hook=pairs_hook, parse_float=reject_float
            )
        except _json.JSONDecodeError as exc:
            raise ModelError(f"invalid JSON text: {exc}") from exc

    @classmethod
    def from_json(cls, text: str, *, extended: bool = False) -> "JSONTree":
        """Parse JSON text into a tree (strict: see :meth:`value_from_json`).

        ``true``/``false``/``null`` are rejected unless ``extended=True``.
        """
        return cls.from_value(cls.value_from_json(text), extended=extended)

    # ------------------------------------------------------------------
    # Node inspection.
    # ------------------------------------------------------------------

    @property
    def root(self) -> int:
        return 0

    def __len__(self) -> int:
        """Number of nodes (the size ``|J|`` used by the complexity bounds)."""
        return len(self._kinds)

    def nodes(self) -> range:
        """All node ids, in a top-down (parent-before-child) order."""
        return range(len(self._kinds))

    def kind(self, node: int) -> Kind:
        return self._kinds[node]

    def is_object(self, node: int) -> bool:
        return self._kinds[node] is Kind.OBJECT

    def is_array(self, node: int) -> bool:
        return self._kinds[node] is Kind.ARRAY

    def is_string(self, node: int) -> bool:
        return self._kinds[node] is Kind.STRING

    def is_number(self, node: int) -> bool:
        return self._kinds[node] is Kind.NUMBER

    def value(self, node: int) -> str | int:
        """The ``val`` function: defined on string and number nodes only."""
        val = self._values[node]
        if val is None:
            raise ModelError(f"node {node} is not a string or number node")
        return val

    def parent(self, node: int) -> int | None:
        parent = self._parents[node]
        return None if parent == _NO_PARENT else parent

    # ------------------------------------------------------------------
    # Arena views (read-only!).  The evaluators' inner loops run over
    # every node; exposing the flat arrays avoids a Python method call
    # per node.  Callers must never mutate the returned lists.
    # ------------------------------------------------------------------

    def node_kinds(self) -> list[Kind]:
        """``kinds[node]`` for every node (do not mutate)."""
        return self._kinds

    def node_values(self) -> list[str | int | None]:
        """``val`` per node, ``None`` on non-leaves (do not mutate)."""
        return self._values

    def node_parents(self) -> list[int]:
        """Parent ids per node, ``-1`` at the root (do not mutate)."""
        return self._parents

    def node_labels(self) -> list[str | int | None]:
        """Incoming edge labels per node, ``None`` at the root (do not
        mutate)."""
        return self._labels

    def edge_label(self, node: int) -> str | int | None:
        """Label of the edge reaching ``node`` (None for the root)."""
        return self._labels[node]

    # ------------------------------------------------------------------
    # Children access (the JSON navigation primitives).
    # ------------------------------------------------------------------

    def object_keys(self, node: int) -> Iterable[str]:
        children = self._obj_children[node]
        return children.keys() if children is not None else ()

    def object_child(self, node: int, key: str) -> int | None:
        """``J[key]`` on an object node; ``None`` when the key is absent."""
        children = self._obj_children[node]
        if children is None:
            return None
        return children.get(key)

    def array_length(self, node: int) -> int:
        children = self._arr_children[node]
        return len(children) if children is not None else 0

    def array_child(self, node: int, index: int) -> int | None:
        """``J[i]`` on an array node; supports negative indices.

        ``-1`` addresses the last element and ``-j`` the j-th element
        from the end, matching the dual operator the paper mentions
        after Definition 1.
        """
        children = self._arr_children[node]
        if children is None:
            return None
        if index < 0:
            index += len(children)
        if 0 <= index < len(children):
            return children[index]
        return None

    def array_children(self, node: int) -> list[int]:
        children = self._arr_children[node]
        return list(children) if children is not None else []

    def num_children(self, node: int) -> int:
        kind = self._kinds[node]
        if kind is Kind.OBJECT:
            obj = self._obj_children[node]
            assert obj is not None
            return len(obj)
        if kind is Kind.ARRAY:
            arr = self._arr_children[node]
            assert arr is not None
            return len(arr)
        return 0

    def children(self, node: int) -> list[int]:
        kind = self._kinds[node]
        if kind is Kind.OBJECT:
            obj = self._obj_children[node]
            assert obj is not None
            return list(obj.values())
        if kind is Kind.ARRAY:
            arr = self._arr_children[node]
            assert arr is not None
            return list(arr)
        return []

    def edges(self, node: int) -> Iterator[tuple[str | int, int]]:
        """Outgoing edges as ``(label, child)`` pairs.

        Labels are keys (``str``) for objects and positions (``int``)
        for arrays -- the relations ``O`` and ``A`` of the formal model.
        """
        kind = self._kinds[node]
        if kind is Kind.OBJECT:
            obj = self._obj_children[node]
            assert obj is not None
            yield from obj.items()
        elif kind is Kind.ARRAY:
            arr = self._arr_children[node]
            assert arr is not None
            yield from enumerate(arr)

    # ------------------------------------------------------------------
    # Tree-domain view.
    # ------------------------------------------------------------------

    def domain_path(self, node: int) -> tuple[int, ...]:
        """The tree-domain word of ``node`` (a sequence of child indices)."""
        path: list[int] = []
        current = node
        while True:
            parent = self._parents[current]
            if parent == _NO_PARENT:
                break
            label = self._labels[current]
            if isinstance(label, int):
                path.append(label)
            else:
                obj = self._obj_children[parent]
                assert obj is not None
                path.append(list(obj.keys()).index(label))  # type: ignore[arg-type]
            current = parent
        path.reverse()
        return tuple(path)

    def label_path(self, node: int) -> tuple[str | int, ...]:
        """Edge labels from the root down to ``node``."""
        labels: list[str | int] = []
        current = node
        while True:
            parent = self._parents[current]
            if parent == _NO_PARENT:
                break
            label = self._labels[current]
            assert label is not None
            labels.append(label)
            current = parent
        labels.reverse()
        return tuple(labels)

    def descendants(self, node: int) -> Iterator[int]:
        """All nodes of the subtree rooted at ``node`` (preorder, iterative)."""
        stack = [node]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(reversed(self.children(current)))

    def preorder_ranks(self) -> list[int]:
        """``ranks[node]`` = position of ``node`` in preorder (document order).

        Node ids are allocation order, which is *not* preorder (children
        are expanded through a LIFO stack), so document-order output
        needs an explicit rank.  The ranks depend only on the tree
        structure and are computed once, then cached -- sorting a
        selected set of ``k`` nodes into document order is ``O(k log k)``
        instead of the ``O(|J|)`` full-tree scan per query.
        """
        if self._preorder is None:
            ranks = [0] * len(self._kinds)
            for rank, node in enumerate(self.descendants(self.root)):
                ranks[node] = rank
            self._preorder = ranks
        return self._preorder

    def document_order(self, nodes: Iterable[int]) -> list[int]:
        """Sort node ids into document (preorder) order."""
        ranks = self.preorder_ranks()
        return sorted(nodes, key=ranks.__getitem__)

    def postorder(self) -> Iterator[int]:
        """All nodes, children before parents (iterative)."""
        # Children ids are always greater than their parent's id because
        # nodes are allocated top-down, so reversed id order is a valid
        # bottom-up order.
        return iter(range(len(self._kinds) - 1, -1, -1))

    def height(self, node: int | None = None) -> int:
        """Height of the subtree rooted at ``node`` (leaves have height 0)."""
        if self._heights is None:
            heights = [0] * len(self._kinds)
            for current in self.postorder():
                child_heights = [heights[c] for c in self.children(current)]
                heights[current] = 1 + max(child_heights) if child_heights else 0
            self._heights = heights
        return self._heights[self.root if node is None else node]

    # ------------------------------------------------------------------
    # Subtrees and serialisation.
    # ------------------------------------------------------------------

    def subtree(self, node: int) -> "JSONTree":
        """The function ``json(n)``: the subtree rooted at ``node``.

        The paper stresses that every subtree of a JSON tree is itself a
        valid JSON tree; this returns it as an independent tree whose
        root is the given node.
        """
        tree = JSONTree()
        mapping = {node: tree._new_node(self._kinds[node], _NO_PARENT, None)}
        for current in self.descendants(node):
            new_id = mapping[current]
            if self._values[current] is not None:
                tree._values[new_id] = self._values[current]
            for label, child in self.edges(current):
                new_child = tree._new_node(self._kinds[child], new_id, label)
                tree._attach(new_id, label, new_child)
                mapping[child] = new_child
        return tree

    def to_value(self, node: int | None = None) -> JSONValue:
        """Serialise the subtree at ``node`` back to Python values.

        Top-down with an explicit stack (no recursion-depth limit):
        each container is allocated when first seen and filled in
        place, leaves are inlined -- one pass, no per-node result
        table.  This is a hot path for collection scans (every matched
        document materialises through it).
        """
        start = self.root if node is None else node
        kinds = self._kinds
        values = self._values
        obj_children = self._obj_children
        arr_children = self._arr_children
        kind = kinds[start]
        if kind is Kind.STRING or kind is Kind.NUMBER:
            return values[start]
        root_out: JSONValue = {} if kind is Kind.OBJECT else []
        stack: list[tuple[int, dict | list]] = [(start, root_out)]
        while stack:
            current, out = stack.pop()
            if isinstance(out, dict):
                obj = obj_children[current]
                assert obj is not None
                for key, child in obj.items():
                    child_kind = kinds[child]
                    if child_kind is Kind.OBJECT:
                        sub: JSONValue = {}
                        out[key] = sub
                        stack.append((child, sub))
                    elif child_kind is Kind.ARRAY:
                        sub = []
                        out[key] = sub
                        stack.append((child, sub))
                    else:
                        out[key] = values[child]
            else:
                arr = arr_children[current]
                assert arr is not None
                for child in arr:
                    child_kind = kinds[child]
                    if child_kind is Kind.OBJECT:
                        sub = {}
                        out.append(sub)
                        stack.append((child, sub))
                    elif child_kind is Kind.ARRAY:
                        sub = []
                        out.append(sub)
                        stack.append((child, sub))
                    else:
                        out.append(values[child])
        return root_out

    def to_json(self, node: int | None = None, *, indent: int | None = None) -> str:
        return _json.dumps(self.to_value(node), indent=indent, sort_keys=False)

    # ------------------------------------------------------------------
    # Dunder conveniences.
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        text = self.to_json()
        if len(text) > 60:
            text = text[:57] + "..."
        return f"JSONTree({text})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JSONTree):
            return NotImplemented
        from repro.model.equality import trees_equal

        return trees_equal(self, other)

    def __hash__(self) -> int:
        from repro.model.equality import canonical_hash

        return canonical_hash(self, self.root)

    def validate(self) -> None:
        """Check the five conditions of the formal definition.

        Construction already enforces them; this re-checks explicitly
        (useful in tests and after hand-built trees).
        """
        for node in self.nodes():
            kind = self._kinds[node]
            if kind.is_leaf_kind:
                if self._values[node] is None:
                    raise ModelError(f"leaf node {node} has no value")
                if kind is Kind.STRING and not isinstance(self._values[node], str):
                    raise ModelError(f"string node {node} has a non-string value")
                if kind is Kind.NUMBER and not isinstance(self._values[node], int):
                    raise ModelError(f"number node {node} has a non-int value")
            else:
                if self._values[node] is not None:
                    raise ModelError(f"non-leaf node {node} carries a value")
            for label, child in self.edges(node):
                if self._parents[child] != node:
                    raise ModelError(f"broken parent link at node {child}")
                if self._labels[child] != label:
                    raise ModelError(f"broken edge label at node {child}")
            if kind is Kind.ARRAY:
                arr = self._arr_children[node]
                assert arr is not None
                for position, child in enumerate(arr):
                    if self._labels[child] != position:
                        raise ModelError(
                            f"array child {child} mislabelled: "
                            f"{self._labels[child]} != {position}"
                        )


def _kind_of(value: JSONValue, extended: bool) -> Kind:
    if isinstance(value, dict):
        return Kind.OBJECT
    if isinstance(value, (list, tuple)):
        return Kind.ARRAY
    if isinstance(value, str):
        return Kind.STRING
    if isinstance(value, bool):
        if extended:
            return Kind.STRING
        raise UnsupportedValueError(
            "booleans are outside the paper's JSON abstraction "
            "(use extended=True to coerce them to strings)"
        )
    if isinstance(value, int):
        return Kind.NUMBER
    if value is None and extended:
        return Kind.STRING
    raise UnsupportedValueError(
        f"unsupported JSON value of type {type(value).__name__}: {value!r}"
    )


def _coerce_string(value: JSONValue) -> str:
    if isinstance(value, str):
        return value
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "null"
    raise UnsupportedValueError(f"cannot coerce {value!r} to a string")
