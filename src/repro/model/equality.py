"""Subtree equality for JSON trees.

A defining feature of the paper's model is that "value is not just in
the node, but is the entire subtree rooted at that node" (Section 3.2):
the comparisons ``EQ(alpha, A)``, ``EQ(alpha, beta)``, the node test
``~(A)`` and the ``Unique`` test all compare *subtrees*, not atomic
values.

To keep those comparisons cheap this module computes a canonical
(Merkle-style) hash for every node in one bottom-up pass: object nodes
hash the *set* of ``(key, child-hash)`` pairs (objects are unordered),
array nodes hash the *sequence* of child hashes (arrays are ordered).
Hash equality is then confirmed by a structural comparison, so the
results are exact even under hash collisions.
"""

from __future__ import annotations

from repro.model.tree import JSONTree, Kind

__all__ = [
    "canonical_hash",
    "compute_all_hashes",
    "subtree_equal",
    "trees_equal",
    "all_children_distinct",
]

_STR_SALT = 0x9E3779B97F4A7C15
_NUM_SALT = 0xC2B2AE3D27D4EB4F
_OBJ_SALT = 0x165667B19E3779F9
_ARR_SALT = 0x27D4EB2F165667C5
_MASK = (1 << 64) - 1


def compute_all_hashes(tree: JSONTree) -> list[int]:
    """Canonical hashes for every node, computed bottom-up in one pass."""
    cached = tree._hashes
    if cached is not None:
        return cached
    hashes = [0] * len(tree)
    for node in tree.postorder():
        kind = tree.kind(node)
        if kind is Kind.STRING:
            item = (_STR_SALT ^ hash(tree.value(node))) & _MASK
        elif kind is Kind.NUMBER:
            item = (_NUM_SALT ^ hash(tree.value(node))) & _MASK
        elif kind is Kind.OBJECT:
            combined = _OBJ_SALT
            # XOR of per-pair hashes: order-independent, matching the
            # unordered semantics of JSON objects.
            for key, child in tree.edges(node):
                pair = hash((key, hashes[child])) & _MASK
                combined ^= pair
            item = hash((_OBJ_SALT, combined, tree.num_children(node))) & _MASK
        else:  # Kind.ARRAY
            combined = _ARR_SALT
            for position, child in tree.edges(node):
                combined = hash((combined, position, hashes[child])) & _MASK
            item = combined
        hashes[node] = item
    tree._hashes = hashes
    return hashes


def canonical_hash(tree: JSONTree, node: int) -> int:
    """Canonical hash of the subtree rooted at ``node``."""
    return compute_all_hashes(tree)[node]


def subtree_equal(
    tree_a: JSONTree, node_a: int, tree_b: JSONTree, node_b: int
) -> bool:
    """Exact test ``json(node_a) == json(node_b)``.

    Uses canonical hashes as a fast filter and verifies structurally on
    a hash match, so the answer is exact.
    """
    if canonical_hash(tree_a, node_a) != canonical_hash(tree_b, node_b):
        return False
    return structural_equal(tree_a, node_a, tree_b, node_b)


def structural_equal(
    tree_a: JSONTree, node_a: int, tree_b: JSONTree, node_b: int
) -> bool:
    """Direct structural comparison of two subtrees (iterative)."""
    stack = [(node_a, node_b)]
    while stack:
        a, b = stack.pop()
        kind = tree_a.kind(a)
        if kind is not tree_b.kind(b):
            return False
        if kind in (Kind.STRING, Kind.NUMBER):
            if tree_a.value(a) != tree_b.value(b):
                return False
        elif kind is Kind.OBJECT:
            keys_a = set(tree_a.object_keys(a))
            keys_b = set(tree_b.object_keys(b))
            if keys_a != keys_b:
                return False
            for key in keys_a:
                child_a = tree_a.object_child(a, key)
                child_b = tree_b.object_child(b, key)
                assert child_a is not None and child_b is not None
                stack.append((child_a, child_b))
        else:  # Kind.ARRAY
            if tree_a.array_length(a) != tree_b.array_length(b):
                return False
            stack.extend(
                zip(tree_a.array_children(a), tree_b.array_children(b))
            )
    return True


def trees_equal(tree_a: JSONTree, tree_b: JSONTree) -> bool:
    """Whole-document equality (the two roots' subtrees coincide)."""
    return subtree_equal(tree_a, tree_a.root, tree_b, tree_b.root)


def all_children_distinct(
    tree: JSONTree, node: int, *, exact_pairwise: bool = False
) -> bool:
    """The ``Unique`` node test: are all children pairwise distinct values?

    The default implementation groups children by canonical hash and
    verifies structurally within groups -- linear in practice.  With
    ``exact_pairwise=True`` it performs the naive quadratic pairwise
    comparison the paper's ``O(|J|^2)`` bound accounts for (kept for the
    Proposition-6 ablation benchmark).
    """
    children = tree.children(node)
    if len(children) < 2:
        return True
    if exact_pairwise:
        for i, child_a in enumerate(children):
            for child_b in children[i + 1 :]:
                if structural_equal(tree, child_a, tree, child_b):
                    return False
        return True
    hashes = compute_all_hashes(tree)
    by_hash: dict[int, list[int]] = {}
    for child in children:
        by_hash.setdefault(hashes[child], []).append(child)
    for group in by_hash.values():
        for i, child_a in enumerate(group):
            for child_b in group[i + 1 :]:
                if structural_equal(tree, child_a, tree, child_b):
                    return False
    return True
