"""The paper's JSON-tree data model (Section 3).

Public surface:

* :class:`~repro.model.tree.JSONTree` and :class:`~repro.model.tree.Kind`
  -- the deterministic, edge-labelled tree structure;
* :class:`~repro.model.navigation.Navigator`, :func:`navigate`,
  :func:`try_navigate`, :func:`fetch` -- JSON navigation instructions;
* :func:`subtree_equal`, :func:`canonical_hash`,
  :func:`all_children_distinct` -- subtree-value comparisons;
* :class:`~repro.model.builder.TreeBuilder` -- event-driven construction;
* JSON Pointer helpers used by ``$ref``.
"""

from repro.model.builder import TreeBuilder
from repro.model.equality import (
    all_children_distinct,
    canonical_hash,
    compute_all_hashes,
    structural_equal,
    subtree_equal,
    trees_equal,
)
from repro.model.navigation import Navigator, fetch, navigate, try_navigate
from repro.model.pointer import (
    parse_pointer,
    pointer_to_steps,
    resolve_in_value,
    resolve_pointer,
)
from repro.model.tree import JSONTree, JSONValue, Kind

__all__ = [
    "JSONTree",
    "JSONValue",
    "Kind",
    "TreeBuilder",
    "Navigator",
    "navigate",
    "try_navigate",
    "fetch",
    "subtree_equal",
    "structural_equal",
    "trees_equal",
    "canonical_hash",
    "compute_all_hashes",
    "all_children_distinct",
    "parse_pointer",
    "pointer_to_steps",
    "resolve_pointer",
    "resolve_in_value",
]
