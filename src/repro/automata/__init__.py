"""Automata substrate: regex engine, key languages and J-automata."""

from repro.automata.keylang import KeyLang, any_key, disjoint_cells, regex_key, word_key
from repro.automata.regex import (
    DFA,
    NFA,
    CharClass,
    Regex,
    determinize,
    dfa_complement,
    dfa_count_words,
    dfa_is_empty,
    dfa_product,
    dfa_sample_words,
    dfa_witness,
    nfa_from_regex,
    nfa_matches,
    parse_regex,
)

# Imported last: jautomata depends on repro.jsl, which itself uses the
# regex/keylang submodules above.
from repro.automata.jautomata import (  # noqa: E402
    JAutomaton,
    from_recursive_jsl,
    to_recursive_jsl,
)

__all__ = [
    "JAutomaton",
    "from_recursive_jsl",
    "to_recursive_jsl",
    "KeyLang",
    "word_key",
    "regex_key",
    "any_key",
    "disjoint_cells",
    "CharClass",
    "Regex",
    "parse_regex",
    "NFA",
    "nfa_from_regex",
    "nfa_matches",
    "DFA",
    "determinize",
    "dfa_complement",
    "dfa_product",
    "dfa_is_empty",
    "dfa_witness",
    "dfa_count_words",
    "dfa_sample_words",
]
