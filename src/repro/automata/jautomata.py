"""J-automata: the automaton model of Proposition 10's proof.

The paper introduces J-automata to decide satisfiability of recursive
JSL: states carry guarded boolean rules over quantified state
predicates (``q`` exists/forall along key languages or index windows)
and node tests, with the acyclicity condition on state rules mirroring
well-formedness.

This module provides the model and the two translations that the
proof's Lemmas 4 and 5 establish:

* :func:`from_recursive_jsl` -- one state per definition (plus one for
  the base expression), rule bodies obtained from the definition
  bodies;
* :func:`to_recursive_jsl` -- rules back into guarded definitions.

Because the translations are semantics-preserving, *emptiness* of a
J-automaton reduces to satisfiability of its recursive JSL image, which
the Proposition 10 subset-fixpoint engine
(:mod:`repro.jsl.satisfiability`) decides -- including the ``Unique``
counting that the proof handles with "how many different trees reach
this state".  Likewise *membership* runs the Proposition 9 bottom-up
evaluator.  The automaton is thus a faithful alternative interface to
the same constructions, and the round-trip is differentially tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WellFormednessError
from repro.jsl import ast as jsl
from repro.jsl.bottom_up import RecursiveJSLEvaluator
from repro.jsl.recursion import check_well_formed
from repro.jsl.satisfiability import SatResult, SolverConfig, jsl_satisfiable
from repro.model.tree import JSONTree

__all__ = ["JAutomaton", "from_recursive_jsl", "to_recursive_jsl"]


@dataclass(frozen=True)
class JAutomaton:
    """A J-automaton as (state, rule) pairs plus an initial state.

    ``rules`` maps each state name to its rule body: a JSL formula over
    node tests in which a :class:`~repro.jsl.ast.Ref` denotes a state
    predicate -- under a modality it is one of the quantified
    predicates ``q_exists/forall``, outside it is a direct state
    dependency (the proof's ``BoolSNT`` combinations).  The acyclicity
    restriction on direct dependencies is exactly JSL well-formedness.
    """

    rules: tuple[tuple[str, jsl.Formula], ...]
    initial: str

    def rule_map(self) -> dict[str, jsl.Formula]:
        return dict(self.rules)

    def states(self) -> list[str]:
        return [name for name, _body in self.rules]

    # ------------------------------------------------------------------

    def check_valid(self) -> None:
        """Enforce the proof's no-loops condition on state rules."""
        if self.initial not in dict(self.rules):
            raise WellFormednessError(
                f"initial state {self.initial!r} has no rule"
            )
        check_well_formed(to_recursive_jsl(self))

    def accepts(self, tree: JSONTree) -> bool:
        """Membership: does the automaton accept the JSON tree?"""
        return RecursiveJSLEvaluator(tree, to_recursive_jsl(self)).satisfies()

    def is_empty(self, config: SolverConfig | None = None) -> bool:
        """Emptiness (Proposition 10): no accepted tree exists.

        Note the result of the underlying bounded-complete engine: an
        ``incomplete`` non-emptiness verdict never occurs (witnesses
        are certified), but an emptiness verdict inherits the engine's
        ``complete`` flag -- use :meth:`emptiness_result` for it.
        """
        return not self.emptiness_result(config).satisfiable

    def emptiness_result(self, config: SolverConfig | None = None) -> SatResult:
        return jsl_satisfiable(to_recursive_jsl(self), config)

    def witness(self, config: SolverConfig | None = None) -> JSONTree | None:
        """An accepted tree, when the language is non-empty."""
        return self.emptiness_result(config).witness


def from_recursive_jsl(expression: jsl.RecursiveJSL) -> JAutomaton:
    """Lemma 5: a J-automaton equivalent to a recursive JSL expression.

    One state per definition plus a fresh initial state for the base
    expression; rule bodies are the definition bodies verbatim (their
    references *are* the state predicates).
    """
    check_well_formed(expression)
    names = {name for name, _body in expression.definitions}
    initial = "q_init"
    while initial in names:
        initial = "_" + initial
    rules = tuple(expression.definitions) + ((initial, expression.base),)
    return JAutomaton(rules, initial)


def to_recursive_jsl(automaton: JAutomaton) -> jsl.RecursiveJSL:
    """The inverse of :func:`from_recursive_jsl` (Lemma 4's direction)."""
    rules = automaton.rule_map()
    base = rules[automaton.initial]
    definitions = tuple(
        (name, body)
        for name, body in automaton.rules
        if name != automaton.initial
    )
    return jsl.RecursiveJSL(definitions, base)
