"""Key languages: the sets of object keys used by modalities and axes.

JSL modalities are indexed by a "subset of Sigma* given as a regular
expression" (Definition 2), and the Theorem-1 translation of
``additionalProperties`` needs "the intersection of the complement of
each expression".  :class:`KeyLang` is an algebraic representation of
such languages -- words, regexes, Sigma*, complements, unions and
intersections -- with:

* fast membership (:meth:`matches`) used by the evaluators, and
* decision procedures (:meth:`is_empty`, :meth:`witness`,
  :meth:`sample_words`, :meth:`count_words`) used by the
  satisfiability engine, implemented by compiling to a DFA on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.automata import regex as rx

__all__ = ["KeyLang", "word_key", "regex_key", "any_key"]


@dataclass(frozen=True)
class KeyLang:
    """An element of the boolean algebra of regular key languages.

    ``op`` is one of ``word``, ``regex``, ``any``, ``none``, ``not``,
    ``and``, ``or``; ``payload`` holds the word / parsed regex, and
    ``children`` the operands.  Instances are immutable and hashable, so
    formulas containing them can be interned and memoised.
    """

    op: str
    payload: str | None = None
    children: tuple["KeyLang", ...] = ()
    # Parsed regex AST for op == "regex" (kept out of eq/hash: the
    # pattern text determines it).
    _regex: rx.Regex | None = field(default=None, compare=False, repr=False)

    # -- constructors -------------------------------------------------------

    @staticmethod
    def word(text: str) -> "KeyLang":
        return KeyLang("word", text)

    @staticmethod
    def regex(pattern: str) -> "KeyLang":
        return KeyLang("regex", pattern, (), rx.parse_regex(pattern))

    @staticmethod
    def any() -> "KeyLang":
        return KeyLang("any")

    @staticmethod
    def none() -> "KeyLang":
        return KeyLang("none")

    def complement(self) -> "KeyLang":
        if self.op == "not":
            return self.children[0]
        if self.op == "any":
            return KeyLang.none()
        if self.op == "none":
            return KeyLang.any()
        return KeyLang("not", None, (self,))

    @staticmethod
    def union(languages: Sequence["KeyLang"]) -> "KeyLang":
        languages = [lang for lang in languages if lang.op != "none"]
        if not languages:
            return KeyLang.none()
        if len(languages) == 1:
            return languages[0]
        if any(lang.op == "any" for lang in languages):
            return KeyLang.any()
        return KeyLang("or", None, tuple(languages))

    @staticmethod
    def intersection(languages: Sequence["KeyLang"]) -> "KeyLang":
        languages = [lang for lang in languages if lang.op != "any"]
        if not languages:
            return KeyLang.any()
        if len(languages) == 1:
            return languages[0]
        if any(lang.op == "none" for lang in languages):
            return KeyLang.none()
        return KeyLang("and", None, tuple(languages))

    # -- inspection ---------------------------------------------------------

    @property
    def single_word(self) -> str | None:
        """The word if this is exactly a one-word language, else ``None``."""
        return self.payload if self.op == "word" else None

    def describe(self) -> str:
        if self.op == "word":
            return repr(self.payload)
        if self.op == "regex":
            return f"/{self.payload}/"
        if self.op == "any":
            return "Σ*"
        if self.op == "none":
            return "∅"
        if self.op == "not":
            return f"!({self.children[0].describe()})"
        joiner = " & " if self.op == "and" else " | "
        return "(" + joiner.join(child.describe() for child in self.children) + ")"

    # -- membership ---------------------------------------------------------

    def matches(self, key: str) -> bool:
        """Does ``key`` belong to the language?  (No DFA construction.)"""
        if self.op == "word":
            return key == self.payload
        if self.op == "regex":
            assert self._regex is not None
            return _regex_matches(self, key)
        if self.op == "any":
            return True
        if self.op == "none":
            return False
        if self.op == "not":
            return not self.children[0].matches(key)
        if self.op == "and":
            return all(child.matches(key) for child in self.children)
        if self.op == "or":
            return any(child.matches(key) for child in self.children)
        raise ValueError(f"unknown KeyLang op {self.op!r}")

    # -- decision procedures (via DFA) ---------------------------------------

    def to_dfa(self) -> rx.DFA:
        cached = _DFA_CACHE.get(self)
        if cached is not None:
            return cached
        dfa = self._build_dfa()
        _DFA_CACHE[self] = dfa
        return dfa

    def _build_dfa(self) -> rx.DFA:
        if self.op == "word":
            assert self.payload is not None
            return rx.determinize(rx.nfa_from_regex(rx.regex_for_word(self.payload)))
        if self.op == "regex":
            assert self._regex is not None
            return rx.determinize(rx.nfa_from_regex(self._regex))
        if self.op == "any":
            return rx.determinize(rx.nfa_from_regex(rx.any_string_regex()))
        if self.op == "none":
            return rx.determinize(rx.nfa_from_regex(rx.REmpty()))
        if self.op == "not":
            return rx.dfa_complement(self.children[0].to_dfa())
        if self.op in ("and", "or"):
            mode = "intersection" if self.op == "and" else "union"
            dfa = self.children[0].to_dfa()
            for child in self.children[1:]:
                dfa = rx.dfa_product(dfa, child.to_dfa(), mode)
            return dfa
        raise ValueError(f"unknown KeyLang op {self.op!r}")

    def is_empty(self) -> bool:
        if self.op == "word":
            return False
        if self.op == "any":
            return False
        if self.op == "none":
            return True
        return rx.dfa_is_empty(self.to_dfa())

    def witness(self) -> str | None:
        """Some word in the language, or ``None`` when empty."""
        if self.op == "word":
            return self.payload
        if self.op == "any":
            return ""
        if self.op == "none":
            return None
        return rx.dfa_witness(self.to_dfa())

    def count_words(self, limit: int) -> int:
        """Distinct words in the language, capped at ``limit``."""
        if self.op == "word":
            return min(1, limit)
        if self.op == "any":
            return limit
        if self.op == "none":
            return 0
        return rx.dfa_count_words(self.to_dfa(), limit)

    def sample_words(self, count: int) -> list[str]:
        """Up to ``count`` distinct words from the language."""
        if self.op == "word":
            assert self.payload is not None
            return [self.payload][:count]
        if self.op == "none":
            return []
        return rx.dfa_sample_words(self.to_dfa(), count)

    def to_pattern_text(self) -> str | None:
        """A single regex string denoting the language (``None`` if empty).

        Boolean combinations are rendered by extracting a regex from the
        compiled DFA; the reverse Theorem-1 translation uses this to turn
        arbitrary key languages back into ``pattern`` /
        ``patternProperties`` strings.
        """
        if self.op == "word":
            assert self.payload is not None
            return "".join(
                "\\" + char if char in _SPECIAL_CHARS else char
                for char in self.payload
            )
        if self.op == "regex":
            return self.payload
        if self.op == "any":
            return ".*"
        if self.op == "none":
            return None
        return rx.dfa_to_regex_text(self.to_dfa())


def _regex_matches(lang: KeyLang, key: str) -> bool:
    memo = _MEMBERSHIP_CACHE.get(lang)
    if memo is None:
        memo = _MEMBERSHIP_CACHE[lang] = {}
    verdict = memo.get(key)
    if verdict is None:
        nfa = _NFA_CACHE.get(lang)
        if nfa is None:
            assert lang._regex is not None
            nfa = rx.nfa_from_regex(lang._regex)
            _NFA_CACHE[lang] = nfa
        verdict = rx.nfa_matches(nfa, key)
        # Evaluators probe the same keys and values over and over (every
        # node of every document); memoise the NFA run per word, bounded
        # so adversarial key sets cannot grow the table without limit.
        if len(memo) < _MEMBERSHIP_LIMIT:
            memo[key] = verdict
    return verdict


_DFA_CACHE: dict[KeyLang, rx.DFA] = {}
_NFA_CACHE: dict[KeyLang, rx.NFA] = {}
_MEMBERSHIP_CACHE: dict[KeyLang, dict[str, bool]] = {}
_MEMBERSHIP_LIMIT = 4096
_SPECIAL_CHARS = set(".^$*+?{}[]()|\\/")


def word_key(text: str) -> KeyLang:
    """The singleton key language ``{text}``."""
    return KeyLang.word(text)


def regex_key(pattern: str) -> KeyLang:
    """The key language of an (anchored) regular expression."""
    return KeyLang.regex(pattern)


def any_key() -> KeyLang:
    """The universal key language Sigma*."""
    return KeyLang.any()


def disjoint_cells(
    languages: Iterable[KeyLang],
) -> list[tuple[frozenset[int], KeyLang]]:
    """All non-empty boolean cells of a finite family of key languages.

    For languages ``L_0 .. L_{k-1}`` this returns, for every subset ``S``
    of indices such that the cell  ``(AND_{i in S} L_i) AND (AND_{i not in
    S} complement(L_i))``  is non-empty, the pair ``(S, cell)``.  The
    satisfiability engine picks witness keys per cell so that a key's
    membership in each modality language is fully determined.
    """
    langs = list(languages)
    cells: list[tuple[frozenset[int], KeyLang]] = []
    for mask in range(1 << len(langs)):
        members = frozenset(i for i in range(len(langs)) if mask >> i & 1)
        parts = [
            langs[i] if i in members else langs[i].complement()
            for i in range(len(langs))
        ]
        cell = KeyLang.intersection(parts)
        if not cell.is_empty():
            cells.append((members, cell))
    return cells
