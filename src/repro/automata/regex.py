"""A self-contained regular-expression engine over unicode strings.

The paper uses regular expressions over the alphabet of all unicode
characters in three places: the non-deterministic key axis ``X_e`` of
JNL, the ``Pattern(e)`` node test / ``"pattern"`` keyword of JSL and
JSON Schema, and the key languages of ``patternProperties``.  The
``additionalProperties`` keyword further needs *complements* of unions
of key languages, and the satisfiability engine needs *intersections*,
*emptiness tests* and *witness words* for boolean combinations of key
languages.  Python's :mod:`re` offers none of the latter, so this module
implements the classical pipeline:

    parse -> syntax tree -> Thompson NFA -> subset-construction DFA

with product, complement, emptiness, shortest-witness and
distinct-word-counting operations on DFAs.  Character classes are kept
as sorted lists of codepoint intervals so the effective alphabet of any
automaton stays tiny regardless of unicode's size.

Matching is *anchored* (the expression must describe the whole string),
which is how the paper reads ``pattern`` -- "validates only against
those strings that belong to the language of this expression".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import RegexParseError

__all__ = [
    "CharClass",
    "Regex",
    "REmpty",
    "REpsilon",
    "RChar",
    "RConcat",
    "RUnion",
    "RStar",
    "parse_regex",
    "NFA",
    "nfa_from_regex",
    "nfa_matches",
    "DFA",
    "determinize",
    "dfa_complement",
    "dfa_product",
    "dfa_is_empty",
    "dfa_witness",
    "dfa_count_words",
    "dfa_sample_words",
    "MAX_CODEPOINT",
]

MAX_CODEPOINT = 0x10FFFF


# ---------------------------------------------------------------------------
# Character classes: sorted, disjoint, inclusive codepoint intervals.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CharClass:
    """A set of characters as normalised codepoint intervals."""

    intervals: tuple[tuple[int, int], ...]

    @staticmethod
    def of(*chars: str) -> "CharClass":
        return CharClass(_normalize([(ord(c), ord(c)) for c in chars]))

    @staticmethod
    def range(low: str, high: str) -> "CharClass":
        return CharClass(_normalize([(ord(low), ord(high))]))

    @staticmethod
    def from_intervals(intervals: Iterable[tuple[int, int]]) -> "CharClass":
        return CharClass(_normalize(list(intervals)))

    @staticmethod
    def any_char() -> "CharClass":
        return CharClass(((0, MAX_CODEPOINT),))

    @staticmethod
    def empty() -> "CharClass":
        return CharClass(())

    def __contains__(self, char: str) -> bool:
        code = ord(char)
        intervals = self.intervals
        lo, hi = 0, len(intervals)
        while lo < hi:
            mid = (lo + hi) // 2
            low, high = intervals[mid]
            if code < low:
                hi = mid
            elif code > high:
                lo = mid + 1
            else:
                return True
        return False

    def union(self, other: "CharClass") -> "CharClass":
        return CharClass(_normalize(list(self.intervals) + list(other.intervals)))

    def complement(self) -> "CharClass":
        result: list[tuple[int, int]] = []
        next_start = 0
        for low, high in self.intervals:
            if low > next_start:
                result.append((next_start, low - 1))
            next_start = high + 1
        if next_start <= MAX_CODEPOINT:
            result.append((next_start, MAX_CODEPOINT))
        return CharClass(tuple(result))

    @property
    def is_empty(self) -> bool:
        return not self.intervals

    def sample(self) -> str:
        """A representative character, preferring printable ASCII."""
        if self.is_empty:
            raise ValueError("empty character class has no sample")
        for low, high in self.intervals:
            start = max(low, 0x20)
            if start <= min(high, 0x7E):
                return chr(start)
        low, high = self.intervals[0]
        return chr(low)

    def size(self) -> int:
        return sum(high - low + 1 for low, high in self.intervals)

    def chars(self, limit: int) -> list[str]:
        """Up to ``limit`` distinct characters from the class."""
        out: list[str] = []
        for low, high in self.intervals:
            for code in range(low, high + 1):
                out.append(chr(code))
                if len(out) >= limit:
                    return out
        return out


def _normalize(intervals: list[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    cleaned = [(lo, hi) for lo, hi in intervals if lo <= hi]
    cleaned.sort()
    merged: list[tuple[int, int]] = []
    for low, high in cleaned:
        if merged and low <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], high))
        else:
            merged.append((low, high))
    return tuple(merged)


# ---------------------------------------------------------------------------
# Regex syntax trees.
# ---------------------------------------------------------------------------


class Regex:
    """Base class of regular-expression syntax trees."""

    __slots__ = ()


@dataclass(frozen=True)
class REmpty(Regex):
    """The empty language."""


@dataclass(frozen=True)
class REpsilon(Regex):
    """The language containing only the empty word."""


@dataclass(frozen=True)
class RChar(Regex):
    char_class: CharClass


@dataclass(frozen=True)
class RConcat(Regex):
    left: Regex
    right: Regex


@dataclass(frozen=True)
class RUnion(Regex):
    left: Regex
    right: Regex


@dataclass(frozen=True)
class RStar(Regex):
    inner: Regex


def regex_for_word(word: str) -> Regex:
    """The singleton language ``{word}``."""
    result: Regex = REpsilon()
    for char in word:
        result = RConcat(result, RChar(CharClass.of(char)))
    return result


def any_string_regex() -> Regex:
    """The universal language Sigma*."""
    return RStar(RChar(CharClass.any_char()))


# ---------------------------------------------------------------------------
# Parser (anchored, egrep-style syntax).
# ---------------------------------------------------------------------------

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
    "v": "\v",
    "0": "\0",
}

_CLASS_SHORTHANDS = {
    "d": CharClass.from_intervals([(0x30, 0x39)]),
    "w": CharClass.from_intervals(
        [(0x30, 0x39), (0x41, 0x5A), (0x5F, 0x5F), (0x61, 0x7A)]
    ),
    "s": CharClass.of(" ", "\t", "\n", "\r", "\f", "\v"),
}


class _RegexParser:
    """Recursive-descent parser for the supported regex syntax.

    Supported: literals, ``.``, ``[...]`` (ranges, negation, shorthands),
    ``(...)``, ``|``, ``*``, ``+``, ``?``, ``{m}``, ``{m,}``, ``{m,n}``
    and escapes ``\\d \\w \\s \\D \\W \\S`` plus literal escapes.
    Anchors ``^``/``$`` are accepted at the ends and ignored (matching
    is anchored anyway).
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse(self) -> Regex:
        if self.text.startswith("^"):
            self.pos = 1
        node = self._union()
        if self.pos < len(self.text):
            raise RegexParseError(
                f"unexpected character {self.text[self.pos]!r} in regex "
                f"{self.text!r}",
                self.pos,
            )
        return node

    # -- grammar -----------------------------------------------------------

    def _union(self) -> Regex:
        node = self._concat()
        while self._peek() == "|":
            self.pos += 1
            node = RUnion(node, self._concat())
        return node

    def _concat(self) -> Regex:
        parts: list[Regex] = []
        while True:
            char = self._peek()
            if char is None or char in "|)":
                break
            if char == "$" and self.pos == len(self.text) - 1:
                self.pos += 1
                break
            parts.append(self._repeat())
        if not parts:
            return REpsilon()
        node = parts[0]
        for part in parts[1:]:
            node = RConcat(node, part)
        return node

    def _repeat(self) -> Regex:
        node = self._atom()
        while True:
            char = self._peek()
            if char == "*":
                self.pos += 1
                node = RStar(node)
            elif char == "+":
                self.pos += 1
                node = RConcat(node, RStar(node))
            elif char == "?":
                self.pos += 1
                node = RUnion(node, REpsilon())
            elif char == "{":
                node = self._bounded_repeat(node)
            else:
                return node

    def _bounded_repeat(self, node: Regex) -> Regex:
        start = self.pos
        self.pos += 1  # consume '{'
        digits_low = self._digits()
        low = int(digits_low) if digits_low else None
        high: int | None
        if self._peek() == ",":
            self.pos += 1
            digits_high = self._digits()
            high = int(digits_high) if digits_high else None
        else:
            high = low
        if self._peek() != "}" or low is None:
            raise RegexParseError(f"malformed bounded repeat in {self.text!r}", start)
        self.pos += 1
        if high is not None and high < low:
            raise RegexParseError(f"bounded repeat {{{low},{high}}} is empty", start)
        required: Regex = REpsilon()
        for _ in range(low):
            required = RConcat(required, node)
        if high is None:
            return RConcat(required, RStar(node))
        optional: Regex = REpsilon()
        for _ in range(high - low):
            optional = RConcat(RUnion(node, REpsilon()), optional)
        return RConcat(required, optional)

    def _digits(self) -> str:
        start = self.pos
        while self._peek() is not None and self.text[self.pos].isdigit():
            self.pos += 1
        return self.text[start : self.pos]

    def _atom(self) -> Regex:
        char = self._peek()
        if char is None:
            raise RegexParseError(f"unexpected end of regex {self.text!r}", self.pos)
        if char == "(":
            self.pos += 1
            if self.text.startswith("?:", self.pos):
                self.pos += 2
            node = self._union()
            if self._peek() != ")":
                raise RegexParseError(f"unbalanced '(' in {self.text!r}", self.pos)
            self.pos += 1
            return node
        if char == "[":
            return RChar(self._char_class())
        if char == ".":
            self.pos += 1
            return RChar(CharClass.any_char())
        if char == "\\":
            return RChar(self._escape())
        if char in "*+?{":
            raise RegexParseError(
                f"quantifier {char!r} with nothing to repeat in {self.text!r}",
                self.pos,
            )
        self.pos += 1
        return RChar(CharClass.of(char))

    def _escape(self) -> CharClass:
        self.pos += 1  # consume backslash
        char = self._peek()
        if char is None:
            raise RegexParseError(f"dangling backslash in {self.text!r}", self.pos)
        self.pos += 1
        if char in _CLASS_SHORTHANDS:
            return _CLASS_SHORTHANDS[char]
        if char.lower() in _CLASS_SHORTHANDS and char.isupper():
            return _CLASS_SHORTHANDS[char.lower()].complement()
        if char in _ESCAPES:
            return CharClass.of(_ESCAPES[char])
        return CharClass.of(char)

    def _char_class(self) -> CharClass:
        start = self.pos
        self.pos += 1  # consume '['
        negated = False
        if self._peek() == "^":
            negated = True
            self.pos += 1
        intervals: list[tuple[int, int]] = []
        first = True
        while True:
            char = self._peek()
            if char is None:
                raise RegexParseError(f"unbalanced '[' in {self.text!r}", start)
            if char == "]" and not first:
                self.pos += 1
                break
            first = False
            if char == "\\":
                cls = self._escape()
                intervals.extend(cls.intervals)
                continue
            self.pos += 1
            low = char
            if self._peek() == "-" and self.pos + 1 < len(self.text) and self.text[
                self.pos + 1
            ] not in "]":
                self.pos += 1
                high_char = self._peek()
                assert high_char is not None
                if high_char == "\\":
                    high_cls = self._escape()
                    high_char = chr(high_cls.intervals[0][0])
                else:
                    self.pos += 1
                if ord(high_char) < ord(low):
                    raise RegexParseError(
                        f"inverted range {low}-{high_char} in {self.text!r}", start
                    )
                intervals.append((ord(low), ord(high_char)))
            else:
                intervals.append((ord(low), ord(low)))
        cls = CharClass.from_intervals(intervals)
        return cls.complement() if negated else cls

    def _peek(self) -> str | None:
        if self.pos < len(self.text):
            return self.text[self.pos]
        return None


def parse_regex(text: str) -> Regex:
    """Parse ``text`` into a regex syntax tree (anchored semantics)."""
    return _RegexParser(text).parse()


# ---------------------------------------------------------------------------
# Thompson NFA.
# ---------------------------------------------------------------------------


class NFA:
    """A non-deterministic finite automaton with char-class transitions."""

    __slots__ = ("num_states", "start", "accept", "transitions", "epsilons")

    def __init__(self) -> None:
        self.num_states = 0
        self.start = 0
        self.accept = 0
        # state -> list of (CharClass, target)
        self.transitions: list[list[tuple[CharClass, int]]] = []
        self.epsilons: list[list[int]] = []

    def new_state(self) -> int:
        self.transitions.append([])
        self.epsilons.append([])
        self.num_states += 1
        return self.num_states - 1

    def add_edge(self, source: int, char_class: CharClass, target: int) -> None:
        self.transitions[source].append((char_class, target))

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilons[source].append(target)

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        seen = set(states)
        stack = list(seen)
        while stack:
            state = stack.pop()
            for target in self.epsilons[state]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)


def nfa_from_regex(regex: Regex) -> NFA:
    """Thompson construction (iterative over an explicit work stack)."""
    nfa = NFA()

    def build(node: Regex) -> tuple[int, int]:
        if isinstance(node, REmpty):
            return nfa.new_state(), nfa.new_state()
        if isinstance(node, REpsilon):
            start = nfa.new_state()
            end = nfa.new_state()
            nfa.add_epsilon(start, end)
            return start, end
        if isinstance(node, RChar):
            start = nfa.new_state()
            end = nfa.new_state()
            if not node.char_class.is_empty:
                nfa.add_edge(start, node.char_class, end)
            return start, end
        if isinstance(node, RConcat):
            left = build(node.left)
            right = build(node.right)
            nfa.add_epsilon(left[1], right[0])
            return left[0], right[1]
        if isinstance(node, RUnion):
            left = build(node.left)
            right = build(node.right)
            start = nfa.new_state()
            end = nfa.new_state()
            nfa.add_epsilon(start, left[0])
            nfa.add_epsilon(start, right[0])
            nfa.add_epsilon(left[1], end)
            nfa.add_epsilon(right[1], end)
            return start, end
        if isinstance(node, RStar):
            inner = build(node.inner)
            start = nfa.new_state()
            end = nfa.new_state()
            nfa.add_epsilon(start, inner[0])
            nfa.add_epsilon(start, end)
            nfa.add_epsilon(inner[1], inner[0])
            nfa.add_epsilon(inner[1], end)
            return start, end
        raise TypeError(f"unknown regex node {node!r}")

    start, accept = build(regex)
    nfa.start = start
    nfa.accept = accept
    return nfa


def nfa_matches(nfa: NFA, word: str) -> bool:
    """Anchored NFA membership by on-line subset simulation."""
    current = nfa.epsilon_closure([nfa.start])
    for char in word:
        next_states: set[int] = set()
        for state in current:
            for char_class, target in nfa.transitions[state]:
                if char in char_class:
                    next_states.add(target)
        if not next_states:
            return False
        current = nfa.epsilon_closure(next_states)
    return nfa.accept in current


# ---------------------------------------------------------------------------
# DFA (total, over a partitioned alphabet).
# ---------------------------------------------------------------------------


class DFA:
    """A complete DFA over an interval-partitioned alphabet.

    ``alphabet`` is a list of disjoint codepoint intervals covering the
    characters that any transition distinguishes; every character not in
    any interval behaves like the ``rest`` pseudo-symbol.  Transitions
    are total: ``delta[state][symbol_index]`` with ``symbol_index ==
    len(alphabet)`` reserved for ``rest``.
    """

    __slots__ = ("alphabet", "delta", "start", "accepting")

    def __init__(
        self,
        alphabet: list[tuple[int, int]],
        delta: list[list[int]],
        start: int,
        accepting: set[int],
    ) -> None:
        self.alphabet = alphabet
        self.delta = delta
        self.start = start
        self.accepting = accepting

    @property
    def num_states(self) -> int:
        return len(self.delta)

    @property
    def num_symbols(self) -> int:
        return len(self.alphabet) + 1  # + the "rest" symbol

    def symbol_of(self, char: str) -> int:
        code = ord(char)
        lo, hi = 0, len(self.alphabet)
        while lo < hi:
            mid = (lo + hi) // 2
            low, high = self.alphabet[mid]
            if code < low:
                hi = mid
            elif code > high:
                lo = mid + 1
            else:
                return mid
        return len(self.alphabet)

    def symbol_sample(self, symbol: int) -> str:
        if symbol < len(self.alphabet):
            low, high = self.alphabet[symbol]
            start = max(low, 0x20)
            return chr(start if start <= min(high, 0x7E) else low)
        # The "rest" symbol: pick a printable char outside all intervals.
        return CharClass(tuple(self.alphabet)).complement().sample()

    def symbol_width(self, symbol: int) -> int:
        if symbol < len(self.alphabet):
            low, high = self.alphabet[symbol]
            return high - low + 1
        covered = sum(high - low + 1 for low, high in self.alphabet)
        return MAX_CODEPOINT + 1 - covered

    def symbol_chars(self, symbol: int, limit: int) -> list[str]:
        if symbol < len(self.alphabet):
            return CharClass((self.alphabet[symbol],)).chars(limit)
        return CharClass(tuple(self.alphabet)).complement().chars(limit)

    def accepts(self, word: str) -> bool:
        state = self.start
        for char in word:
            state = self.delta[state][self.symbol_of(char)]
        return state in self.accepting


def _partition_boundaries(classes: Iterable[CharClass]) -> list[tuple[int, int]]:
    """Split the codepoint space so every class is a union of cells."""
    points: set[int] = set()
    for cls in classes:
        for low, high in cls.intervals:
            points.add(low)
            points.add(high + 1)
    if not points:
        return []
    sorted_points = sorted(points)
    cells: list[tuple[int, int]] = []
    for index, low in enumerate(sorted_points):
        high = (
            sorted_points[index + 1] - 1
            if index + 1 < len(sorted_points)
            else MAX_CODEPOINT
        )
        if low <= high and low <= MAX_CODEPOINT:
            cells.append((low, min(high, MAX_CODEPOINT)))
    return cells


def determinize(nfa: NFA) -> DFA:
    """Subset construction, producing a complete DFA."""
    all_classes = [
        char_class
        for edges in nfa.transitions
        for char_class, _ in edges
    ]
    alphabet = _partition_boundaries(all_classes)
    samples = [chr(max(low, 0)) for low, _high in alphabet]

    start_set = nfa.epsilon_closure([nfa.start])
    index: dict[frozenset[int], int] = {start_set: 0}
    worklist = [start_set]
    delta: list[list[int]] = []
    accepting: set[int] = set()
    order: list[frozenset[int]] = [start_set]

    while worklist:
        current = worklist.pop()
        state_id = index[current]
        while len(delta) <= state_id:
            delta.append([])
        row = [0] * (len(alphabet) + 1)
        for symbol, sample in enumerate(samples):
            targets: set[int] = set()
            for state in current:
                for char_class, target in nfa.transitions[state]:
                    if sample in char_class:
                        targets.add(target)
            closure = nfa.epsilon_closure(targets) if targets else frozenset()
            if closure not in index:
                index[closure] = len(index)
                order.append(closure)
                worklist.append(closure)
            row[symbol] = index[closure]
        # The "rest" symbol matches no transition class by construction.
        empty = frozenset()
        if empty not in index:
            index[empty] = len(index)
            order.append(empty)
            worklist.append(empty)
        row[len(alphabet)] = index[empty]
        delta[state_id] = row

    while len(delta) < len(index):
        delta.append([])
    for subset, state_id in index.items():
        if not delta[state_id]:
            delta[state_id] = [index[frozenset()]] * (len(alphabet) + 1)
        if nfa.accept in subset:
            accepting.add(state_id)
    return DFA(alphabet, delta, 0, accepting)


def dfa_complement(dfa: DFA) -> DFA:
    accepting = set(range(dfa.num_states)) - dfa.accepting
    return DFA(dfa.alphabet, [row[:] for row in dfa.delta], dfa.start, accepting)


def _refine_alphabets(left: DFA, right: DFA) -> tuple[
    list[tuple[int, int]], list[int], list[int]
]:
    """Common refinement of two DFA alphabets + symbol remappings."""
    classes = [CharClass((cell,)) for cell in left.alphabet] + [
        CharClass((cell,)) for cell in right.alphabet
    ]
    cells = _partition_boundaries(classes)
    left_map: list[int] = []
    right_map: list[int] = []
    for low, _high in cells:
        char = chr(low)
        left_map.append(left.symbol_of(char))
        right_map.append(right.symbol_of(char))
    return cells, left_map, right_map


def dfa_product(left: DFA, right: DFA, mode: str = "intersection") -> DFA:
    """Product automaton; ``mode`` in {'intersection', 'union', 'difference'}."""
    cells, left_map, right_map = _refine_alphabets(left, right)
    num_symbols = len(cells) + 1
    index: dict[tuple[int, int], int] = {(left.start, right.start): 0}
    worklist = [(left.start, right.start)]
    delta: list[list[int]] = []
    pairs: list[tuple[int, int]] = [(left.start, right.start)]
    while worklist:
        pair = worklist.pop()
        state_id = index[pair]
        while len(delta) <= state_id:
            delta.append([])
        row = [0] * num_symbols
        for symbol in range(num_symbols):
            if symbol < len(cells):
                l_sym = left_map[symbol]
                r_sym = right_map[symbol]
            else:
                l_sym = len(left.alphabet)
                r_sym = len(right.alphabet)
            target = (left.delta[pair[0]][l_sym], right.delta[pair[1]][r_sym])
            if target not in index:
                index[target] = len(index)
                pairs.append(target)
                worklist.append(target)
            row[symbol] = index[target]
        delta[state_id] = row
    accepting: set[int] = set()
    for (l_state, r_state), state_id in index.items():
        in_left = l_state in left.accepting
        in_right = r_state in right.accepting
        if mode == "intersection":
            accept = in_left and in_right
        elif mode == "union":
            accept = in_left or in_right
        elif mode == "difference":
            accept = in_left and not in_right
        else:
            raise ValueError(f"unknown product mode {mode!r}")
        if accept:
            accepting.add(state_id)
    return DFA(cells, delta, 0, accepting)


def dfa_is_empty(dfa: DFA) -> bool:
    """Is the accepted language empty?  (BFS reachability.)"""
    return dfa_witness(dfa) is None


def dfa_witness(dfa: DFA) -> str | None:
    """A shortest accepted word, or ``None`` if the language is empty."""
    if dfa.start in dfa.accepting:
        return ""
    parent: dict[int, tuple[int, int]] = {}
    visited = {dfa.start}
    frontier = [dfa.start]
    while frontier:
        next_frontier: list[int] = []
        for state in frontier:
            for symbol, target in enumerate(dfa.delta[state]):
                if target in visited:
                    continue
                visited.add(target)
                parent[target] = (state, symbol)
                if target in dfa.accepting:
                    # Reconstruct the word backwards.
                    chars: list[str] = []
                    current = target
                    while current != dfa.start:
                        source, sym = parent[current]
                        chars.append(dfa.symbol_sample(sym))
                        current = source
                    return "".join(reversed(chars))
                next_frontier.append(target)
        frontier = next_frontier
    return None


def _useful_states(dfa: DFA) -> set[int]:
    """States reachable from start that can reach an accepting state."""
    reachable = {dfa.start}
    stack = [dfa.start]
    while stack:
        state = stack.pop()
        for target in dfa.delta[state]:
            if target not in reachable:
                reachable.add(target)
                stack.append(target)
    # Reverse reachability from accepting states.
    reverse: dict[int, set[int]] = {s: set() for s in range(dfa.num_states)}
    for state in range(dfa.num_states):
        for target in dfa.delta[state]:
            reverse[target].add(state)
    co_reachable = set(dfa.accepting)
    stack = list(dfa.accepting)
    while stack:
        state = stack.pop()
        for source in reverse[state]:
            if source not in co_reachable:
                co_reachable.add(source)
                stack.append(source)
    return reachable & co_reachable


def dfa_count_words(dfa: DFA, limit: int) -> int:
    """Number of distinct accepted words, capped at ``limit``.

    Detects infinite languages (a cycle among useful states) and returns
    ``limit`` immediately in that case.
    """
    useful = _useful_states(dfa)
    if dfa.start not in useful:
        return 0
    # Cycle detection among useful states (iterative colouring).
    colour: dict[int, int] = {}
    for root in useful:
        if colour.get(root, 0) == 2:
            continue
        stack: list[tuple[int, Iterator[int]]] = [
            (root, iter(dfa.delta[root]))
        ]
        colour[root] = 1
        while stack:
            state, targets = stack[-1]
            advanced = False
            for target in targets:
                if target not in useful:
                    continue
                state_colour = colour.get(target, 0)
                if state_colour == 1:
                    return limit  # cycle => infinite language
                if state_colour == 0:
                    colour[target] = 1
                    stack.append((target, iter(dfa.delta[target])))
                    advanced = True
                    break
            if not advanced:
                colour[state] = 2
                stack.pop()
    # Finite language: all words have length < number of useful states.
    total = 0
    counts: dict[int, int] = {dfa.start: 1}
    for _length in range(len(useful) + 1):
        total += sum(
            count for state, count in counts.items() if state in dfa.accepting
        )
        if total >= limit:
            return limit
        next_counts: dict[int, int] = {}
        for state, count in counts.items():
            for symbol, target in enumerate(dfa.delta[state]):
                if target not in useful:
                    continue
                width = dfa.symbol_width(symbol)
                next_counts[target] = min(
                    limit, next_counts.get(target, 0) + count * width
                )
        counts = next_counts
        if not counts:
            break
    return min(total, limit)


def char_class_pattern(intervals: Iterable[tuple[int, int]]) -> str:
    """A regex source snippet matching exactly the given intervals."""
    cells = _normalize(list(intervals))
    if not cells:
        raise ValueError("empty character class has no pattern")
    if cells == ((0, MAX_CODEPOINT),):
        return "."
    if len(cells) == 1 and cells[0][0] == cells[0][1]:
        return _escape_char(chr(cells[0][0]))
    # Prefer a negated class when the complement is smaller.
    complement = CharClass(cells).complement().intervals
    if 0 < len(complement) < len(cells):
        return "[^" + "".join(_interval_pattern(c) for c in complement) + "]"
    return "[" + "".join(_interval_pattern(c) for c in cells) + "]"


def _interval_pattern(cell: tuple[int, int]) -> str:
    low, high = cell
    if low == high:
        return _escape_in_class(chr(low))
    return f"{_escape_in_class(chr(low))}-{_escape_in_class(chr(high))}"


_SPECIAL = set(".^$*+?{}[]()|\\/")


def _escape_char(char: str) -> str:
    return "\\" + char if char in _SPECIAL else char


def _escape_in_class(char: str) -> str:
    return "\\" + char if char in "^]-\\" else char


def dfa_to_regex_text(dfa: DFA) -> str | None:
    """A regular expression denoting the DFA's language (GNFA elimination).

    Returns ``None`` when the language is empty.  Used by the reverse
    Theorem-1 translation, where a boolean combination of key languages
    (e.g. the complement built by ``additionalProperties``) must be
    rendered back into a single ``pattern`` string.
    """
    useful = _useful_states(dfa)
    if dfa.start not in useful:
        return None

    # GNFA edges: (source, target) -> regex source text.
    START, ACCEPT = -1, -2
    edges: dict[tuple[int, int], str] = {}

    def add_edge(source: int, target: int, pattern: str) -> None:
        existing = edges.get((source, target))
        if existing is None:
            edges[(source, target)] = pattern
        elif pattern not in (existing, *existing.split("|")):
            edges[(source, target)] = f"{existing}|{pattern}"

    # Group parallel symbols into one character class per state pair.
    for state in useful:
        by_target: dict[int, list[tuple[int, int]]] = {}
        for symbol, target in enumerate(dfa.delta[state]):
            if target not in useful:
                continue
            if symbol < len(dfa.alphabet):
                by_target.setdefault(target, []).append(dfa.alphabet[symbol])
            else:
                rest = CharClass(tuple(dfa.alphabet)).complement()
                if rest.intervals:
                    by_target.setdefault(target, []).extend(rest.intervals)
        for target, intervals in by_target.items():
            if intervals:
                add_edge(state, target, char_class_pattern(intervals))
    add_edge(START, dfa.start, "")
    for state in dfa.accepting:
        if state in useful:
            add_edge(state, ACCEPT, "")

    def wrap(pattern: str) -> str:
        if len(pattern) <= 1 or (
            pattern.startswith("[") and pattern.endswith("]") and "[" not in pattern[1:]
        ):
            return pattern
        return f"(?:{pattern})"

    def concat(left: str, right: str) -> str:
        if "|" in left:
            left = wrap(left)
        if "|" in right:
            right = wrap(right)
        return left + right

    remaining = sorted(useful)
    for eliminated in remaining:
        loop = edges.pop((eliminated, eliminated), None)
        loop_part = f"{wrap(loop)}*" if loop not in (None, "") else ""
        sources = [
            s for (s, t) in edges if t == eliminated and s != eliminated
        ]
        targets = [
            t for (s, t) in edges if s == eliminated and t != eliminated
        ]
        for source in sources:
            in_pattern = edges[(source, eliminated)]
            for target in targets:
                out_pattern = edges[(eliminated, target)]
                add_edge(
                    source, target, concat(concat(in_pattern, loop_part), out_pattern)
                )
        edges = {
            (s, t): p
            for (s, t), p in edges.items()
            if s != eliminated and t != eliminated
        }
    return edges.get((START, ACCEPT))


def dfa_sample_words(dfa: DFA, count: int) -> list[str]:
    """Up to ``count`` distinct accepted words, shortest first."""
    useful = _useful_states(dfa)
    if dfa.start not in useful:
        return []
    results: list[str] = []
    # BFS over (state, word) pairs in length order; expand each symbol
    # into at most ``count`` concrete characters.
    frontier: list[tuple[int, str]] = [(dfa.start, "")]
    max_length = dfa.num_states + count + 1
    for _length in range(max_length + 1):
        next_frontier: list[tuple[int, str]] = []
        for state, word in frontier:
            if state in dfa.accepting:
                results.append(word)
                if len(results) >= count:
                    return results
        for state, word in frontier:
            for symbol in range(dfa.num_symbols):
                target = dfa.delta[state][symbol]
                if target not in useful:
                    continue
                for char in dfa.symbol_chars(symbol, count):
                    next_frontier.append((target, word + char))
                    if len(next_frontier) > 4 * count * dfa.num_states + 16:
                        break
        frontier = next_frontier[: 4 * count * dfa.num_states + 16]
        if not frontier:
            break
    return results
