"""JSON Schema core fragment: parsing and direct validation."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, WellFormednessError
from repro.schema import (
    SchemaValidator,
    is_schema_well_formed,
    parse_schema,
    schema_precedence_graph,
    validates_value,
)


class TestParsing:
    def test_empty_schema(self):
        schema = parse_schema({})
        assert validates_value(schema, {"anything": [1, "x"]})
        assert validates_value(schema, 0)

    def test_annotations_ignored(self):
        schema = parse_schema(
            {"title": "T", "description": "D", "type": "string"}
        )
        assert validates_value(schema, "x")

    def test_unknown_keywords_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema({"type": "string", "frobnicate": 1})

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema({"type": "banana"})

    def test_mixed_combinators_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema({"allOf": [{}], "anyOf": [{}]})

    def test_bad_pattern_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema({"type": "string", "pattern": "("})

    def test_non_natural_bounds_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema({"type": "number", "minimum": -1})

    def test_ref_outside_definitions_rejected(self):
        with pytest.raises(SchemaError):
            parse_schema({"$ref": "#/elsewhere/x"})

    def test_json_text_input(self):
        schema = parse_schema('{"type": "number", "minimum": 3}')
        assert validates_value(schema, 3)
        assert not validates_value(schema, 2)

    def test_serialise_round_trip(self):
        source = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "number", "multipleOf": 2}},
            "patternProperties": {"x.*": {"type": "string"}},
            "additionalProperties": {"enum": [1]},
            "minProperties": 1,
        }
        schema = parse_schema(source)
        assert parse_schema(schema.to_value()).to_value() == schema.to_value()


class TestStringAndNumber:
    def test_string(self):
        schema = parse_schema({"type": "string", "pattern": "(01)+"})
        assert validates_value(schema, "0101")
        assert not validates_value(schema, "010")
        assert not validates_value(schema, 7)

    def test_number_bounds_inclusive(self):
        schema = parse_schema(
            {"type": "number", "minimum": 3, "maximum": 5}
        )
        assert validates_value(schema, 3)
        assert validates_value(schema, 5)
        assert not validates_value(schema, 2)
        assert not validates_value(schema, 6)

    def test_multiple_of(self):
        # The paper's example: maximum 12, multipleOf 4 -> 0, 4, 8, 12.
        schema = parse_schema(
            {"type": "number", "maximum": 12, "multipleOf": 4}
        )
        accepted = [n for n in range(14) if validates_value(schema, n)]
        assert accepted == [0, 4, 8, 12]


class TestObject:
    def test_paper_object_example(self):
        schema = parse_schema(
            {
                "type": "object",
                "properties": {"name": {"type": "string"}},
                "patternProperties": {
                    "a(b|c)a": {"type": "number", "multipleOf": 2}
                },
                "additionalProperties": {
                    "type": "number",
                    "minimum": 1,
                    "maximum": 1,
                },
            }
        )
        assert validates_value(schema, {"name": "x", "aba": 4, "z": 1})
        assert not validates_value(schema, {"name": 1})
        assert not validates_value(schema, {"aba": 3})
        assert not validates_value(schema, {"z": 2})
        assert validates_value(schema, {})

    def test_required(self):
        schema = parse_schema({"type": "object", "required": ["a", "b"]})
        assert validates_value(schema, {"a": 1, "b": 2, "c": 3})
        assert not validates_value(schema, {"a": 1})

    def test_property_count_bounds(self):
        schema = parse_schema(
            {"type": "object", "minProperties": 1, "maxProperties": 2}
        )
        assert not validates_value(schema, {})
        assert validates_value(schema, {"a": 1})
        assert not validates_value(schema, {"a": 1, "b": 2, "c": 3})

    def test_pattern_and_property_both_apply(self):
        schema = parse_schema(
            {
                "type": "object",
                "properties": {"ab": {"type": "number"}},
                "patternProperties": {"a.": {"type": "number", "minimum": 5}},
            }
        )
        assert validates_value(schema, {"ab": 7})
        assert not validates_value(schema, {"ab": 3})  # pattern also applies

    def test_additional_absent_is_unconstrained(self):
        schema = parse_schema(
            {"type": "object", "properties": {"a": {"type": "number"}}}
        )
        assert validates_value(schema, {"zzz": [1, 2]})


class TestArray:
    def test_paper_array_example(self):
        schema = parse_schema(
            {
                "type": "array",
                "items": [{"type": "string"}, {"type": "string"}],
                "additionalItems": {"type": "number"},
                "uniqueItems": True,
            }
        )
        assert validates_value(schema, ["a", "b"])
        assert validates_value(schema, ["a", "b", 1, 2])
        assert not validates_value(schema, ["a"])          # items required
        assert not validates_value(schema, ["a", "b", "c"])
        assert not validates_value(schema, ["a", "b", 1, 1])  # uniqueItems

    def test_items_without_additional_forbids_extras(self):
        schema = parse_schema({"type": "array", "items": [{}]})
        assert validates_value(schema, [5])
        assert not validates_value(schema, [5, 6])

    def test_additional_without_items(self):
        schema = parse_schema(
            {"type": "array", "additionalItems": {"type": "number"}}
        )
        assert validates_value(schema, [1, 2, 3])
        assert not validates_value(schema, [1, "x"])

    def test_bare_array(self):
        schema = parse_schema({"type": "array"})
        assert validates_value(schema, [])
        assert not validates_value(schema, {})


class TestCombinators:
    def test_not(self):
        # The paper's odd-number example.
        schema = parse_schema({"not": {"type": "number", "multipleOf": 2}})
        assert validates_value(schema, 3)
        assert not validates_value(schema, 4)
        assert validates_value(schema, "not a number")

    def test_any_of_all_of(self):
        schema = parse_schema(
            {"anyOf": [{"type": "string"}, {"type": "number", "minimum": 5}]}
        )
        assert validates_value(schema, "x")
        assert validates_value(schema, 9)
        assert not validates_value(schema, 3)
        both = parse_schema(
            {"allOf": [{"type": "number", "minimum": 2},
                       {"type": "number", "maximum": 4}]}
        )
        assert validates_value(both, 3)
        assert not validates_value(both, 5)

    def test_enum(self):
        schema = parse_schema({"enum": [[1, 2], {"a": 0}, "x"]})
        assert validates_value(schema, [1, 2])
        assert validates_value(schema, {"a": 0})
        assert not validates_value(schema, [2, 1])


class TestRefs:
    def test_email_example(self):
        schema = parse_schema(
            {
                "definitions": {
                    "email": {"type": "string", "pattern": "[A-z]*@ciws\\.cl"}
                },
                "not": {"$ref": "#/definitions/email"},
            }
        )
        assert not validates_value(schema, "john@ciws.cl")
        assert validates_value(schema, "other")
        assert validates_value(schema, 42)

    def test_guarded_recursion_validates(self):
        schema = parse_schema(
            {
                "definitions": {
                    "tree": {
                        "anyOf": [
                            {"type": "number"},
                            {
                                "type": "object",
                                "required": ["left"],
                                "properties": {
                                    "left": {"$ref": "#/definitions/tree"},
                                    "right": {"$ref": "#/definitions/tree"},
                                },
                            },
                        ]
                    }
                },
                "$ref": "#/definitions/tree",
            }
        )
        assert validates_value(schema, {"left": {"left": 1}, "right": 2})
        assert not validates_value(schema, {"left": "nope"})

    def test_unguarded_cycle_rejected(self):
        schema = parse_schema(
            {
                "definitions": {
                    "a": {"not": {"$ref": "#/definitions/b"}},
                    "b": {"allOf": [{"$ref": "#/definitions/a"}]},
                },
                "$ref": "#/definitions/a",
            }
        )
        assert not is_schema_well_formed(schema)
        with pytest.raises(WellFormednessError):
            SchemaValidator(schema)

    def test_precedence_graph_shape(self):
        schema = parse_schema(
            {
                "definitions": {
                    "a": {"not": {"$ref": "#/definitions/b"}},
                    "b": {"type": "object",
                          "properties": {"x": {"$ref": "#/definitions/a"}}},
                },
                "$ref": "#/definitions/a",
            }
        )
        graph = schema_precedence_graph(schema)
        assert graph["a"] == {"b"}
        assert graph["b"] == set()  # guarded under properties

    def test_unresolved_ref(self):
        schema = parse_schema({"$ref": "#/definitions/ghost"})
        with pytest.raises(WellFormednessError):
            SchemaValidator(schema).validate_value(1)
