"""The executable hardness reductions (Propositions 2, 4, 7, 9)."""

from __future__ import annotations

import random

import pytest

from repro.errors import UnsupportedFragmentError
from repro.jnl.efficient import evaluate_unary
from repro.jnl.satisfiability import jnl_satisfiable
from repro.jsl.bottom_up import RecursiveJSLEvaluator
from repro.jsl.satisfiability import jsl_satisfiable
from repro.reductions import (
    CNF3,
    QBF,
    TwoCounterMachine,
    assignment_from_witness,
    brute_force_qbf,
    brute_force_sat,
    circuit_to_jsl,
    cnf_to_jnl,
    encode_run,
    evaluate_circuit,
    machine_to_jnl,
    qbf_to_jsl,
    random_3cnf,
    random_circuit,
    random_qbf,
    run_machine,
)
from repro.reductions.circuits import assignment_to_document
from repro.reductions.sat3 import assignment_to_document as sat_doc
from repro.reductions.sat3 import evaluate_cnf


class TestProposition2:
    @pytest.mark.parametrize("seed", range(12))
    def test_reduction_agrees_with_brute_force(self, seed):
        cnf = random_3cnf(num_vars=4, num_clauses=6 + seed, seed=seed)
        expected = brute_force_sat(cnf) is not None
        result = jnl_satisfiable(cnf_to_jnl(cnf))
        assert result.satisfiable == expected
        if not result.satisfiable:
            assert result.complete

    @pytest.mark.parametrize("seed", range(8))
    def test_witness_decodes_to_satisfying_assignment(self, seed):
        cnf = random_3cnf(num_vars=4, num_clauses=5, seed=seed + 100)
        result = jnl_satisfiable(cnf_to_jnl(cnf))
        if result.satisfiable:
            assignment = assignment_from_witness(cnf, result.witness)
            assert evaluate_cnf(cnf, assignment)

    def test_canonical_model_satisfies_formula(self):
        cnf = random_3cnf(num_vars=3, num_clauses=4, seed=7)
        assignment = brute_force_sat(cnf)
        if assignment is None:
            pytest.skip("unsatisfiable instance")
        doc = sat_doc(cnf, assignment)
        formula = cnf_to_jnl(cnf)
        assert doc.root in evaluate_unary(doc, formula)

    def test_unsatisfiable_instance(self):
        # (x) ^ (~x) in 3CNF padding form.
        cnf = CNF3(1, ((1, 1, 1), (-1, -1, -1)))
        assert brute_force_sat(cnf) is None
        result = jnl_satisfiable(cnf_to_jnl(cnf))
        assert not result.satisfiable and result.complete

    def test_formula_is_negation_and_equality_free(self):
        from repro.jnl import ast

        formula = cnf_to_jnl(random_3cnf(3, 4, 1))
        assert not any(
            isinstance(sub, (ast.Not, ast.EqDoc, ast.EqPath))
            for sub in _walk(formula)
        )


def _walk(formula):
    from repro.jnl.ast import _children

    stack = [formula]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(_children(current))


class TestProposition7:
    @pytest.mark.parametrize("seed", range(12))
    def test_reduction_agrees_with_brute_force(self, seed):
        qbf = random_qbf(num_vars=3, num_clauses=4, seed=seed)
        expected = brute_force_qbf(qbf)
        result = jsl_satisfiable(qbf_to_jsl(qbf))
        assert result.satisfiable == expected

    def test_forall_false_instance(self):
        # forall x . x is false (clause: x padded).
        qbf = QBF(("a",), ((1, 1, 1),))
        assert not brute_force_qbf(qbf)
        assert not jsl_satisfiable(qbf_to_jsl(qbf)).satisfiable

    def test_exists_true_instance(self):
        qbf = QBF(("e",), ((1, 1, 1),))
        assert brute_force_qbf(qbf)
        result = jsl_satisfiable(qbf_to_jsl(qbf))
        assert result.satisfiable
        # The witness assignment tree sets variable 1 to T.
        value = result.witness.to_value()
        assert "T" in value and "F" not in value

    def test_alternation_matters(self):
        # exists x forall y (x = y) is false; the clauses encode
        # (x v y) ^ (~x v ~y) = x xor y ... checking both orders.
        clauses = ((1, 2, 2), (-1, -2, -2))
        assert brute_force_qbf(QBF(("e", "a"), clauses)) == jsl_satisfiable(
            qbf_to_jsl(QBF(("e", "a"), clauses))
        ).satisfiable


class TestProposition9:
    @pytest.mark.parametrize("seed", range(10))
    def test_circuit_value_via_recursive_jsl(self, seed):
        circuit = random_circuit(num_inputs=4, num_gates=8, seed=seed)
        rng = random.Random(seed)
        inputs = {i: rng.random() < 0.5 for i in range(1, 5)}
        expected = evaluate_circuit(circuit, inputs)
        doc = assignment_to_document(circuit, inputs)
        expression = circuit_to_jsl(circuit)
        assert RecursiveJSLEvaluator(doc, expression).satisfies() == expected

    def test_precedence_graph_is_the_circuit_dag(self):
        from repro.jsl.recursion import precedence_graph

        circuit = random_circuit(num_inputs=2, num_gates=5, seed=3)
        expression = circuit_to_jsl(circuit)
        graph = precedence_graph(expression)
        # Gate definitions reference their operands unguarded.
        assert any(graph[name] for name in graph)

    def test_all_input_combinations_for_small_circuit(self):
        circuit = random_circuit(num_inputs=3, num_gates=5, seed=11)
        expression = circuit_to_jsl(circuit)
        from itertools import product

        for bits in product((False, True), repeat=3):
            inputs = dict(zip((1, 2, 3), bits))
            doc = assignment_to_document(circuit, inputs)
            assert RecursiveJSLEvaluator(doc, expression).satisfies() == (
                evaluate_circuit(circuit, inputs)
            )


HALTING_PROGRAM = {
    "q0": ("inc", 1, "q1"),
    "q1": ("inc", 1, "q2"),
    "q2": ("inc", 2, "q3"),
    "q3": ("dec", 1, "q4"),
    "q4": ("jz", 2, "qf", "q5"),
    "q5": ("dec", 2, "q4"),
    "qf": ("halt",),
}


class TestProposition4:
    def test_run_trace(self):
        machine = TwoCounterMachine(HALTING_PROGRAM, "q0", "qf")
        trace = run_machine(machine)
        assert trace is not None
        assert trace[0] == ("q0", 0, 0)
        assert trace[-1][0] == "qf"

    def test_halting_run_satisfies_formula(self):
        machine = TwoCounterMachine(HALTING_PROGRAM, "q0", "qf")
        trace = run_machine(machine)
        tree = encode_run(trace)
        formula = machine_to_jnl(machine)
        assert tree.root in evaluate_unary(tree, formula)

    def test_corrupted_state_rejected(self):
        machine = TwoCounterMachine(HALTING_PROGRAM, "q0", "qf")
        trace = [list(c) for c in run_machine(machine)]
        trace[2][0] = "q0"  # wrong state mid-run
        tree = encode_run([tuple(c) for c in trace])
        formula = machine_to_jnl(machine)
        assert tree.root not in evaluate_unary(tree, formula)

    def test_corrupted_counter_rejected(self):
        machine = TwoCounterMachine(HALTING_PROGRAM, "q0", "qf")
        trace = [list(c) for c in run_machine(machine)]
        trace[3][1] += 1  # counter jumps by 2
        tree = encode_run([tuple(c) for c in trace])
        formula = machine_to_jnl(machine)
        assert tree.root not in evaluate_unary(tree, formula)

    def test_non_halting_machine_prefix_rejected(self):
        looping = {"q0": ("inc", 1, "q0"), "qf": ("halt",)}
        machine = TwoCounterMachine(looping, "q0", "qf")
        assert run_machine(machine, max_steps=50) is None
        # An honest prefix never reaches qf, so the formula fails.
        prefix = [("q0", i, 0) for i in range(5)]
        tree = encode_run(prefix)
        formula = machine_to_jnl(machine)
        assert tree.root not in evaluate_unary(tree, formula)

    def test_solver_refuses_the_undecidable_fragment(self):
        machine = TwoCounterMachine(HALTING_PROGRAM, "q0", "qf")
        with pytest.raises(UnsupportedFragmentError):
            jnl_satisfiable(machine_to_jnl(machine))
