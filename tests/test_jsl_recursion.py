"""Recursive JSL: well-formedness, unfold vs bottom-up (Prop. 9)."""

from __future__ import annotations

import random

import pytest

from repro.errors import WellFormednessError
from repro.jsl import ast
from repro.jsl.bottom_up import RecursiveJSLEvaluator, satisfies_recursive
from repro.jsl.parser import parse_jsl
from repro.jsl.recursion import (
    check_well_formed,
    is_well_formed,
    precedence_graph,
    topological_order,
    unguarded_refs,
)
from repro.jsl.unfold import satisfies_by_unfolding, unfold
from repro.model.tree import JSONTree
from repro.workloads import (
    TreeShape,
    even_depth_tree,
    random_jsl_formula,
    random_tree,
)

EVEN_PATHS = """
def g1 := all(.*, $g2);
def g2 := some(.*, true) and all(.*, $g1);
$g1
"""


class TestWellFormedness:
    def test_example2_is_well_formed(self):
        delta = parse_jsl(EVEN_PATHS)
        assert is_well_formed(delta)
        # Guarded cycles are allowed: the precedence graph has no edges.
        graph = precedence_graph(delta)
        assert graph == {"g1": set(), "g2": set()}

    def test_example3_negated_self_reference(self):
        bad = ast.RecursiveJSL((("g", ast.Not(ast.Ref("g"))),), ast.Ref("g"))
        with pytest.raises(WellFormednessError):
            check_well_formed(bad)

    def test_unguarded_cycle_through_two_definitions(self):
        bad = ast.RecursiveJSL(
            (("a", ast.Ref("b")), ("b", ast.And(ast.Top(), ast.Ref("a")))),
            ast.Ref("a"),
        )
        assert not is_well_formed(bad)

    def test_undefined_reference(self):
        bad = ast.RecursiveJSL((), ast.Ref("ghost"))
        with pytest.raises(WellFormednessError):
            check_well_formed(bad)

    def test_duplicate_names(self):
        bad = ast.RecursiveJSL(
            (("a", ast.Top()), ("a", ast.Top())), ast.Ref("a")
        )
        with pytest.raises(WellFormednessError):
            check_well_formed(bad)

    def test_unguarded_refs_ignores_modal_bodies(self):
        formula = parse_jsl(
            "def g := true; some(.a, $g) and not $g"
        )
        assert isinstance(formula, ast.RecursiveJSL)
        assert unguarded_refs(formula.base) == {"g"}

    def test_topological_order_respects_unguarded_deps(self):
        delta = ast.RecursiveJSL(
            (
                ("high", ast.And(ast.Ref("low"), ast.Top())),
                ("low", ast.Top()),
            ),
            ast.Ref("high"),
        )
        order = topological_order(delta)
        assert order.index("low") < order.index("high")


class TestExample2:
    @pytest.mark.parametrize("depth,expected", [(0, True), (1, False),
                                                (2, True), (3, False), (4, True)])
    def test_even_path_trees(self, depth, expected):
        delta = parse_jsl(EVEN_PATHS)
        tree = even_depth_tree(depth)
        assert satisfies_recursive(tree, delta) == expected
        assert satisfies_by_unfolding(tree, delta) == expected

    def test_mixed_depths_rejected(self):
        delta = parse_jsl(EVEN_PATHS)
        tree = JSONTree.from_value({"a": {"b": {}}, "c": {}})
        # One path has length 2, another length 1.
        assert not satisfies_recursive(tree, delta)


class TestUnfold:
    def test_unfold_replaces_deep_refs_with_bottom(self):
        delta = parse_jsl(EVEN_PATHS)
        formula = unfold(delta, height=0)
        assert ast.refs_in(formula) == set()

    def test_unfold_grows_with_height(self):
        delta = parse_jsl(EVEN_PATHS)
        small = ast.formula_size(unfold(delta, 1))
        large = ast.formula_size(unfold(delta, 7))
        assert large > small

    def test_unfold_checks_well_formedness(self):
        bad = ast.RecursiveJSL((("g", ast.Ref("g")),), ast.Ref("g"))
        with pytest.raises(WellFormednessError):
            unfold(bad, 3)


class TestBottomUpAgainstUnfold:
    """Differential test of Proposition 9's algorithm vs the paper's
    rewriting semantics."""

    @pytest.mark.parametrize("seed", range(15))
    def test_random_recursive_expressions(self, seed):
        rng = random.Random(seed)
        body1 = random_jsl_formula(rng, 2)
        body2 = random_jsl_formula(rng, 2)
        # Guard the cyclic references to keep the expression well-formed.
        from repro.automata.keylang import KeyLang

        delta = ast.RecursiveJSL(
            (
                ("g1", ast.Or(body1, ast.DiaKey(KeyLang.any(), ast.Ref("g2")))),
                ("g2", ast.And(body2, ast.BoxIdx(0, None, ast.Ref("g1")))),
            ),
            ast.Ref("g1"),
        )
        check_well_formed(delta)
        tree = random_tree(seed + 99, TreeShape(max_depth=3, max_children=3))
        assert satisfies_recursive(tree, delta) == satisfies_by_unfolding(
            tree, delta
        )

    def test_ref_nodes_exposed(self):
        delta = parse_jsl(EVEN_PATHS)
        tree = even_depth_tree(2)
        evaluator = RecursiveJSLEvaluator(tree, delta)
        # Leaves have even (zero) remaining depth: g1 holds there.
        leaves = [n for n in tree.nodes() if tree.num_children(n) == 0]
        g1_nodes = evaluator.ref_nodes("g1")
        assert all(leaf in g1_nodes for leaf in leaves)

    def test_deep_tree_no_recursion_error(self):
        from repro.workloads import deep_chain

        delta = parse_jsl(EVEN_PATHS)
        tree = deep_chain(4000, leaf={})
        assert satisfies_recursive(tree, delta) == (4000 % 2 == 0)
