"""Theorem 1 (and 3): Schema <-> JSL, differentially tested."""

from __future__ import annotations

import random

import pytest

from repro.jsl import RecursiveJSL, satisfies
from repro.jsl.bottom_up import satisfies_recursive
from repro.jsl.parser import parse_jsl, parse_jsl_formula
from repro.model.tree import JSONTree
from repro.schema import (
    SchemaValidator,
    jsl_to_schema,
    parse_schema,
    schema_to_jsl,
)
from repro.workloads import (
    TreeShape,
    random_schema_value,
    random_tree,
    random_jsl_formula,
)


def _agree_on(schema, formula, tree) -> None:
    validator = SchemaValidator(schema)
    direct = validator.validate(tree)
    if isinstance(formula, RecursiveJSL):
        via_jsl = satisfies_recursive(tree, formula)
    else:
        via_jsl = satisfies(tree, formula)
    assert direct == via_jsl, (
        f"validator={direct} jsl={via_jsl} doc={tree.to_json()} "
        f"schema={schema.to_value()}"
    )


class TestForwardTranslation:
    """schema -> JSL preserves the validation relation."""

    @pytest.mark.parametrize("seed", range(60))
    def test_random_schemas_random_docs(self, seed):
        rng = random.Random(seed)
        schema = parse_schema(random_schema_value(rng, depth=2))
        formula = schema_to_jsl(schema)
        for doc_seed in range(5):
            tree = random_tree(
                seed * 31 + doc_seed, TreeShape(max_depth=3, max_children=3)
            )
            _agree_on(schema, formula, tree)

    def test_paper_examples(self):
        schema = parse_schema(
            {
                "type": "array",
                "items": [{"type": "string"}, {"type": "string"}],
                "additionalItems": {"type": "number"},
                "uniqueItems": True,
            }
        )
        formula = schema_to_jsl(schema)
        for value in (["a", "b"], ["a", "b", 3], ["a"], ["a", "b", "c"],
                      ["a", "b", 1, 1], [], "x"):
            _agree_on(schema, formula, JSONTree.from_value(value))

    def test_recursive_schema_becomes_recursive_jsl(self):
        schema = parse_schema(
            {
                "definitions": {
                    "email": {"type": "string", "pattern": "[a-z]+@x\\.y"}
                },
                "not": {"$ref": "#/definitions/email"},
            }
        )
        formula = schema_to_jsl(schema)
        assert isinstance(formula, RecursiveJSL)
        for value in ("a@x.y", "nope", 3, {"k": 1}):
            _agree_on(schema, formula, JSONTree.from_value(value))


class TestReverseTranslation:
    """JSL -> schema preserves satisfaction."""

    @pytest.mark.parametrize("seed", range(40))
    def test_random_formulas_random_docs(self, seed):
        rng = random.Random(seed + 5000)
        formula = random_jsl_formula(rng, depth=2)
        schema = jsl_to_schema(formula)
        validator = SchemaValidator(schema)
        for doc_seed in range(5):
            tree = random_tree(
                seed * 37 + doc_seed, TreeShape(max_depth=3, max_children=3)
            )
            assert validator.validate(tree) == satisfies(tree, formula)

    @pytest.mark.parametrize(
        "text",
        [
            "minch(2)",
            "maxch(2)",
            "unique",
            "some(.a, number and min(3))",
            "all(./x.*/, string)",
            "all([1:3], number)",
            "some([2:], string)",
            "not some(.a, true) and object",
            'pattern("ab*") or value({"k": 1})',
            "multipleof(3) and max(10)",
        ],
    )
    def test_each_construct(self, text):
        formula = parse_jsl_formula(text)
        schema = jsl_to_schema(formula)
        validator = SchemaValidator(schema)
        samples = [
            {}, {"a": 1}, {"a": 4, "b": 2}, {"xy": "s"}, {"xy": 3},
            [], [1], [1, 2, 3], [1, 1], ["a", 2, 3, "b"],
            "ab", "abb", "z", 0, 3, 9, 12, {"k": 1},
        ]
        for value in samples:
            tree = JSONTree.from_value(value)
            assert validator.validate(tree) == satisfies(tree, formula), value

    def test_recursive_round_trip(self):
        delta = parse_jsl(
            "def g1 := all(.*, $g2);"
            "def g2 := some(.*, true) and all(.*, $g1);"
            "$g1"
        )
        schema = jsl_to_schema(delta)
        validator = SchemaValidator(schema)
        from repro.workloads import even_depth_tree

        for depth in range(4):
            tree = even_depth_tree(depth)
            assert validator.validate(tree) == (depth % 2 == 0)


class TestDoubleRoundTrip:
    @pytest.mark.parametrize("seed", range(20))
    def test_schema_jsl_schema(self, seed):
        rng = random.Random(seed + 777)
        schema = parse_schema(random_schema_value(rng, depth=2))
        formula = schema_to_jsl(schema)
        back = jsl_to_schema(formula) if not isinstance(
            formula, RecursiveJSL
        ) else jsl_to_schema(formula)
        original = SchemaValidator(schema)
        round_tripped = SchemaValidator(back)
        for doc_seed in range(4):
            tree = random_tree(
                seed * 41 + doc_seed, TreeShape(max_depth=3, max_children=3)
            )
            assert original.validate(tree) == round_tripped.validate(tree)
