"""J-automata (Proposition 10): translations, membership, emptiness."""

from __future__ import annotations

import random

import pytest

from repro.automata.jautomata import (
    JAutomaton,
    from_recursive_jsl,
    to_recursive_jsl,
)
from repro.errors import WellFormednessError
from repro.jsl import ast
from repro.jsl.bottom_up import satisfies_recursive
from repro.jsl.parser import parse_jsl
from repro.workloads import (
    TreeShape,
    even_depth_tree,
    random_jsl_formula,
    random_tree,
)

EVEN = (
    "def g1 := all(.*, $g2);"
    "def g2 := some(.*, true) and all(.*, $g1);"
    "$g1"
)


class TestTranslations:
    def test_round_trip_preserves_acceptance(self):
        delta = parse_jsl(EVEN)
        automaton = from_recursive_jsl(delta)
        back = to_recursive_jsl(automaton)
        for depth in range(5):
            tree = even_depth_tree(depth)
            assert automaton.accepts(tree) == satisfies_recursive(tree, delta)
            assert satisfies_recursive(tree, back) == satisfies_recursive(
                tree, delta
            )

    @pytest.mark.parametrize("seed", range(10))
    def test_random_formulas_round_trip(self, seed):
        rng = random.Random(seed)
        delta = ast.RecursiveJSL(
            (("g", random_jsl_formula(rng, 2)),), ast.Ref("g")
        )
        automaton = from_recursive_jsl(delta)
        tree = random_tree(seed, TreeShape(max_depth=3, max_children=3))
        assert automaton.accepts(tree) == satisfies_recursive(tree, delta)

    def test_initial_state_fresh(self):
        delta = parse_jsl("def q_init := true; $q_init")
        automaton = from_recursive_jsl(delta)
        assert automaton.initial != "q_init"


class TestEmptiness:
    def test_nonempty_with_witness(self):
        automaton = from_recursive_jsl(parse_jsl(EVEN))
        assert not automaton.is_empty()
        witness = automaton.witness()
        assert witness is not None
        assert automaton.accepts(witness)

    def test_empty_language(self):
        delta = parse_jsl("def g := some(.a, $g); $g")  # infinite descent
        automaton = from_recursive_jsl(delta)
        assert automaton.is_empty()

    def test_check_valid_rejects_unguarded_cycles(self):
        automaton = JAutomaton(
            (("p", ast.Not(ast.Ref("p"))), ("q0", ast.Ref("p"))), "q0"
        )
        with pytest.raises(WellFormednessError):
            automaton.check_valid()

    def test_check_valid_requires_initial_rule(self):
        automaton = JAutomaton((("p", ast.Top()),), "missing")
        with pytest.raises(WellFormednessError):
            automaton.check_valid()
