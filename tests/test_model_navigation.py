"""JSON navigation instructions (Section 2)."""

from __future__ import annotations

import pytest

from repro.errors import NavigationError
from repro.model.navigation import Navigator, fetch, navigate, try_navigate
from repro.model.pointer import (
    parse_pointer,
    resolve_in_value,
    resolve_pointer,
)
from repro.model.tree import Kind


class TestNavigate:
    def test_key_then_key(self, figure1_doc):
        node = navigate(figure1_doc, ["name", "first"])
        assert figure1_doc.value(node) == "John"

    def test_key_then_index(self, figure1_doc):
        node = navigate(figure1_doc, ["hobbies", 1])
        assert figure1_doc.value(node) == "yoga"

    def test_missing_key_raises(self, figure1_doc):
        with pytest.raises(NavigationError):
            navigate(figure1_doc, ["nope"])

    def test_index_on_object_fails(self, figure1_doc):
        # Navigation instructions are typed: J[0] on an object fails.
        assert try_navigate(figure1_doc, [0]) is None

    def test_key_on_array_fails(self, figure1_doc):
        assert try_navigate(figure1_doc, ["hobbies", "x"]) is None

    def test_try_navigate_none_on_failure(self, figure1_doc):
        assert try_navigate(figure1_doc, ["name", "middle"]) is None

    def test_fetch_returns_subdocument(self, figure1_doc):
        assert fetch(figure1_doc, "name") == {"first": "John", "last": "Doe"}

    def test_no_sibling_traversal_primitive(self, figure1_doc):
        # The API deliberately offers no "next sibling": only random
        # access by position, as the paper stresses.
        assert not hasattr(figure1_doc, "next_sibling")


class TestNavigator:
    def test_chained_getitem(self, figure1_doc):
        doc = Navigator(figure1_doc)
        assert doc["name"]["first"].value() == "John"
        assert doc["hobbies"][0].value() == "fishing"
        assert doc["hobbies"][-1].value() == "yoga"

    def test_kind_and_len(self, figure1_doc):
        doc = Navigator(figure1_doc)
        assert doc.kind is Kind.OBJECT
        assert len(doc["hobbies"]) == 2

    def test_get_is_optional(self, figure1_doc):
        doc = Navigator(figure1_doc)
        assert doc.get("missing") is None
        assert doc.get("age").value() == 32

    def test_json_returns_independent_subtree(self, figure1_doc):
        sub = Navigator(figure1_doc)["name"].json()
        sub.validate()
        assert sub.to_value() == {"first": "John", "last": "Doe"}

    def test_parse_classmethod(self):
        doc = Navigator.parse('{"k": [5]}')
        assert doc["k"][0].value() == 5

    def test_follow(self, figure1_doc):
        assert Navigator(figure1_doc).follow(["name", "last"]).value() == "Doe"


class TestPointer:
    def test_parse_tokens(self):
        assert parse_pointer("#/definitions/email") == ["definitions", "email"]
        assert parse_pointer("/a~1b/c~0d") == ["a/b", "c~d"]
        assert parse_pointer("#") == []

    def test_resolve_on_tree(self, figure1_doc):
        node = resolve_pointer(figure1_doc, "#/name/first")
        assert figure1_doc.value(node) == "John"

    def test_resolve_array_token(self, figure1_doc):
        node = resolve_pointer(figure1_doc, "#/hobbies/1")
        assert figure1_doc.value(node) == "yoga"

    def test_resolve_in_value(self):
        value = {"definitions": {"email": {"type": "string"}}}
        assert resolve_in_value(value, "#/definitions/email") == {
            "type": "string"
        }

    def test_resolve_failure(self, figure1_doc):
        with pytest.raises(NavigationError):
            resolve_pointer(figure1_doc, "#/nope")
