"""The shared logical-plan IR: lowering, predicates, cache registration."""

from __future__ import annotations

import pytest

from repro.cache import artifact_cache, clear_artifact_cache
from repro.model.tree import Kind
from repro.query import compile_mongo_find, compile_query
from repro.query import ir


def match_pred(query):
    return query.plan.match_predicate


def conjuncts(pred) -> set:
    if isinstance(pred, ir.AndPred):
        return set(pred.parts)
    return {pred}


def leaves(pred) -> set:
    """All leaf predicates anywhere in the tree."""
    if isinstance(pred, (ir.AndPred, ir.OrPred)):
        return {leaf for part in pred.parts for leaf in leaves(part)}
    return {pred}


class TestFrontendsLowerToIR:
    """All three front-ends produce a LogicalPlan via the shared IR."""

    def test_jsonpath_lowers(self):
        plan = compile_query("$.a.b", "jsonpath").plan
        assert isinstance(plan, ir.LogicalPlan)
        assert plan.mode == ir.MODE_SELECT
        assert plan.path is not None

    def test_mongo_lowers(self):
        plan = compile_mongo_find({"a": 1}).plan
        assert isinstance(plan, ir.LogicalPlan)
        assert plan.mode == ir.MODE_FILTER
        assert plan.formula is not None

    def test_jnl_lowers(self):
        plan = compile_query("has(.a)", "jnl").plan
        assert isinstance(plan, ir.LogicalPlan)
        assert plan.mode == ir.MODE_FILTER

    def test_jnl_path_lowers(self):
        plan = compile_query(".a.b", "jnl-path").plan
        assert plan.mode == ir.MODE_SELECT

    def test_payload_is_the_frontend_ast(self):
        # The IR carries the front-end's AST verbatim: execution through
        # the plan is bit-for-bit the pre-IR engine.
        query = compile_query("has(.a)", "jnl")
        assert query.plan.payload is query.formula


class TestSargableExtraction:
    def test_mongo_equality(self):
        pred = match_pred(compile_mongo_find({"name.first": "Sue"}))
        assert ir.PathEq(("name", "first"), "Sue") in leaves(pred)

    def test_mongo_dotted_index_path_is_stripped(self):
        pred = match_pred(compile_mongo_find({"tags.0": "x"}))
        assert ir.PathEq(("tags",), "x") in leaves(pred)

    def test_mongo_range(self):
        pred = match_pred(
            compile_mongo_find({"age": {"$gte": 30, "$lt": 60}})
        )
        parts = conjuncts(pred)
        assert ir.PathRange(("age",), 29, None) in parts
        assert ir.PathRange(("age",), None, 60) in parts

    def test_mongo_in_becomes_disjunction(self):
        pred = match_pred(compile_mongo_find({"c": {"$in": ["x", "y"]}}))
        ors = [p for p in conjuncts(pred) if isinstance(p, ir.OrPred)]
        assert ors and leaves(ors[0]) >= {
            ir.PathEq(("c",), "x"),
            ir.PathEq(("c",), "y"),
        }

    def test_mongo_exists(self):
        pred = match_pred(compile_mongo_find({"a.b": {"$exists": True}}))
        assert ir.PathExists(("a", "b")) in conjuncts(pred)

    def test_mongo_negations_do_not_prune(self):
        assert match_pred(
            compile_mongo_find({"a": {"$exists": False}})
        ) == ir.TRUE
        assert match_pred(compile_mongo_find({})) == ir.TRUE

    def test_mongo_type(self):
        pred = match_pred(compile_mongo_find({"a": {"$type": "string"}}))
        assert ir.PathKind(("a",), Kind.STRING) in conjuncts(pred)

    def test_jsonpath_key_chain(self):
        pred = match_pred(compile_query("$.store.book[0].title", "jsonpath"))
        assert ir.PathExists(("store", "book", "title")) in conjuncts(pred)
        assert ir.PathKind(("store", "book"), Kind.ARRAY) in conjuncts(pred)

    def test_jsonpath_descendant_uses_key_presence(self):
        pred = match_pred(compile_query("$..author", "jsonpath"))
        assert pred == ir.OrPred(
            (ir.PathExists(("author",)), ir.HasKey("author"))
        )

    def test_jsonpath_wildcard_filter_splits_on_kind(self):
        pred = match_pred(
            compile_query('$.hobbies[?(@ == "chess")]', "jsonpath")
        )
        assert isinstance(pred, ir.OrPred)
        array_branch = [
            branch for branch in pred.parts
            if ir.PathEq(("hobbies",), "chess") in conjuncts(branch)
        ]
        assert array_branch, pred

    def test_jnl_filter_anchored_and_floating(self):
        plan = compile_query("has(.name.first)", "jnl").plan
        assert plan.match_predicate == ir.PathExists(("name", "first"))
        assert conjuncts(plan.node_predicate) == {
            ir.HasKey("name"),
            ir.HasKey("first"),
        }

    def test_true_is_absorbing(self):
        assert ir.and_([ir.TRUE, ir.TRUE]) == ir.TRUE
        assert ir.or_([ir.PathExists(("a",)), ir.TRUE]) == ir.TRUE
        assert ir.and_([ir.PathExists(("a",)), ir.TRUE]) == ir.PathExists(("a",))


class TestPlanCacheRegistration:
    def test_plans_register_in_artifact_cache(self):
        clear_artifact_cache()
        try:
            query = compile_query("$.cached.plan.probe", "jsonpath")
            _ = query.plan
            assert ("ir-plan", ir.MODE_SELECT, query.path) in artifact_cache()
        finally:
            clear_artifact_cache()

    def test_structurally_equal_payloads_share_one_plan(self):
        from repro.jnl.parser import parse_jnl

        clear_artifact_cache()
        try:
            formula = parse_jnl("has(.shared.plan)")
            twin = parse_jnl("has(.shared.plan)")
            assert formula == twin
            first = ir.plan_for(formula=formula)
            second = ir.plan_for(formula=twin)
            assert first is second
        finally:
            clear_artifact_cache()

    def test_cache_none_bypasses(self):
        from repro.jnl.parser import parse_jnl

        formula = parse_jnl("has(.uncached)")
        assert ir.plan_for(formula=formula, cache=None) is not ir.plan_for(
            formula=formula, cache=None
        )

    def test_exactly_one_payload(self):
        with pytest.raises(ValueError):
            ir.plan_for()


class TestDeprecatedQueryCacheShim:
    def test_import_warns(self):
        import importlib
        import sys

        sys.modules.pop("repro.query.cache", None)
        with pytest.warns(DeprecationWarning, match="repro.cache"):
            importlib.import_module("repro.query.cache")

    def test_shim_still_aliases_the_artifact_cache(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.query.cache import query_cache

        assert query_cache() is artifact_cache()
