"""Subtree-equality semantics: value = the whole subtree (Section 3.2)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.equality import (
    all_children_distinct,
    canonical_hash,
    structural_equal,
    subtree_equal,
    trees_equal,
)
from repro.model.tree import JSONTree

json_values = st.recursive(
    st.one_of(st.integers(min_value=0, max_value=50), st.text(max_size=4)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=3), children, max_size=4),
    ),
    max_leaves=12,
)


class TestObjectOrderIrrelevance:
    def test_key_order_does_not_matter(self):
        left = JSONTree.from_value({"a": 1, "b": 2})
        right = JSONTree.from_value({"b": 2, "a": 1})
        assert trees_equal(left, right)
        assert canonical_hash(left, left.root) == canonical_hash(
            right, right.root
        )

    def test_array_order_matters(self):
        left = JSONTree.from_value([1, 2])
        right = JSONTree.from_value([2, 1])
        assert not trees_equal(left, right)

    def test_nested_reordering(self):
        left = JSONTree.from_value({"o": {"x": [1, {"a": 0, "b": 1}]}})
        right = JSONTree.from_value({"o": {"x": [1, {"b": 1, "a": 0}]}})
        assert trees_equal(left, right)


class TestSubtreeEqual:
    def test_within_one_tree(self):
        tree = JSONTree.from_value({"a": {"x": 1}, "b": {"x": 1}, "c": {"x": 2}})
        a = tree.object_child(tree.root, "a")
        b = tree.object_child(tree.root, "b")
        c = tree.object_child(tree.root, "c")
        assert subtree_equal(tree, a, tree, b)
        assert not subtree_equal(tree, a, tree, c)

    def test_across_trees(self):
        left = JSONTree.from_value({"x": [1, "q"]})
        right = JSONTree.from_value({"x": [1, "q"]})
        assert subtree_equal(left, left.root, right, right.root)

    def test_kind_mismatch(self):
        left = JSONTree.from_value([])
        right = JSONTree.from_value({})
        assert not subtree_equal(left, left.root, right, right.root)

    def test_string_vs_number(self):
        left = JSONTree.from_value("1")
        right = JSONTree.from_value(1)
        assert not subtree_equal(left, left.root, right, right.root)


class TestUnique:
    def test_distinct_children(self):
        tree = JSONTree.from_value([1, 2, "1"])
        assert all_children_distinct(tree, tree.root)

    def test_duplicate_children(self):
        tree = JSONTree.from_value([{"a": 1}, {"a": 1}])
        assert not all_children_distinct(tree, tree.root)

    def test_exact_pairwise_agrees_with_hashed(self):
        for value in ([1, 1], [1, 2], [[0], [0], [1]], [], [5]):
            tree = JSONTree.from_value(value)
            assert all_children_distinct(
                tree, tree.root, exact_pairwise=True
            ) == all_children_distinct(tree, tree.root, exact_pairwise=False)

    def test_fewer_than_two_children(self):
        assert all_children_distinct(JSONTree.from_value([]), 0)
        assert all_children_distinct(JSONTree.from_value([7]), 0)

    def test_object_duplicates_by_value_allowed(self):
        # Unique concerns arrays; objects can't repeat keys but can
        # repeat values -- those children are NOT distinct.
        tree = JSONTree.from_value({"a": 1, "b": 1})
        assert not all_children_distinct(tree, tree.root)


class TestHypothesisRoundTrips:
    @given(json_values)
    @settings(max_examples=60, deadline=None)
    def test_build_serialize_round_trip(self, value):
        tree = JSONTree.from_value(value)
        tree.validate()
        assert tree.to_value() == value

    @given(json_values)
    @settings(max_examples=60, deadline=None)
    def test_json_text_round_trip(self, value):
        tree = JSONTree.from_value(value)
        assert JSONTree.from_json(tree.to_json()) == tree

    @given(json_values)
    @settings(max_examples=60, deadline=None)
    def test_structural_equal_is_reflexive(self, value):
        tree = JSONTree.from_value(value)
        copy = JSONTree.from_value(value)
        assert structural_equal(tree, tree.root, copy, copy.root)
        assert canonical_hash(tree, tree.root) == canonical_hash(copy, copy.root)

    @given(json_values, json_values)
    @settings(max_examples=60, deadline=None)
    def test_equality_matches_value_equality(self, left_value, right_value):
        left = JSONTree.from_value(left_value)
        right = JSONTree.from_value(right_value)
        assert trees_equal(left, right) == (left_value == right_value)
