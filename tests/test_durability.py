"""Durability: the WAL + snapshot engine behind ``StorageEngine``.

Covers the tentpole acceptance criteria explicitly: a durable
collection survives a restart with every secondary-index table
identical to a from-scratch rebuild (the consistency oracle), and
truncating the WAL mid-frame recovers the longest committed prefix
without an error.  Around those: the frame format (CRC, torn tails,
foreign files), the commit ordering invariant (schema rejections leave
no disk trace), versioned snapshots, log compaction (including an
interrupted one), the :class:`repro.store.Database` factory, and the
deprecation shim on engineless ``Collection(...)`` construction.

The randomised crash-recovery suite scales with ``REPRO_DIFF_SCALE``
(the nightly CI job runs it at ~20x the per-PR iteration counts).
"""

from __future__ import annotations

import copy
import json
import os
import random
import struct
import zlib

import pytest

from repro.errors import DocumentRejectedError, StorageFormatError, StoreError
from repro.store import (
    Collection,
    Database,
    DocumentIndexes,
    DurableEngine,
    MemoryEngine,
    WriteAheadLog,
)
from repro.store.wal import WAL_MAGIC
from repro.workloads import people_collection
from repro import api

_SCALE = int(os.environ.get("REPRO_DIFF_SCALE", "1"))

PEOPLE = people_collection(40, seed=7)

SCHEMA = {
    "type": "object",
    "required": ["name"],
    "properties": {"age": {"type": "number", "maximum": 120}},
}


def durable(path, name="main", **kwargs):
    """A collection on a fresh DurableEngine (page-cache sync: the
    tests exercise process-crash recovery, not power loss)."""
    kwargs.setdefault("sync", "flush")
    documents = kwargs.pop("documents", ())
    schema = kwargs.pop("schema", None)
    engine = DurableEngine(os.fspath(path), name, **kwargs)
    return Collection(documents, schema=schema, engine=engine)


def values(collection: Collection) -> dict[int, object]:
    return {doc_id: tree.to_value() for doc_id, tree in collection.documents()}


def rebuilt(collection: Collection) -> DocumentIndexes:
    fresh = DocumentIndexes()
    for doc_id, tree in collection.documents():
        fresh.add(doc_id, tree)
    return fresh


def assert_oracle(collection: Collection) -> None:
    """Recovered indexes must equal a from-scratch rebuild, across all
    six posting tables (including per-document entry refcounts)."""
    assert collection.indexes.snapshot() == rebuilt(collection).snapshot()


def frame(payload: dict) -> bytes:
    """One wire-format WAL frame (for hand-crafting corrupt logs)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return struct.pack(">II", len(body), zlib.crc32(body)) + body


class TestWALFormat:
    def test_append_reopen_replays_in_order(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path, sync="flush")
        assert wal.lsn == 0
        assert wal.append({"op": "a"}) == 1
        assert wal.append({"op": "b", "n": 2}) == 2
        wal.close()
        reopened = WriteAheadLog(path, sync="flush")
        assert reopened.replayed == [
            {"lsn": 1, "op": "a"},
            {"lsn": 2, "op": "b", "n": 2},
        ]
        assert reopened.truncated_bytes == 0
        # The LSN sequence continues where the recovered tail left off.
        assert reopened.append({"op": "c"}) == 3
        reopened.close()

    def test_truncation_at_every_byte_offset(self, tmp_path):
        """Cutting the file at *any* offset recovers the longest
        committed prefix, silently."""
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path, sync="flush")
        boundaries = [wal.size_bytes()]  # just the magic
        for index in range(4):
            wal.append({"op": "x", "i": index})
            boundaries.append(wal.size_bytes())
        wal.close()
        blob = open(path, "rb").read()
        assert len(blob) == boundaries[-1]
        for cut in range(len(blob) + 1):
            case = str(tmp_path / "cut.wal")
            with open(case, "wb") as handle:
                handle.write(blob[:cut])
            recovered = WriteAheadLog(case, sync="none")
            committed = sum(1 for edge in boundaries[1:] if edge <= cut)
            assert len(recovered.replayed) == committed, cut
            assert recovered.lsn == committed
            assert [r["i"] for r in recovered.replayed] == list(range(committed))
            recovered.close()
            # The torn tail was truncated away on disk, too.
            assert os.path.getsize(case) == max(
                boundaries[0], boundaries[committed]
            )

    def test_corrupt_middle_frame_drops_the_suffix(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path, sync="flush")
        wal.append({"op": "keep"})
        second_starts = wal.size_bytes()
        wal.append({"op": "flipped"})
        wal.append({"op": "after"})
        wal.close()
        blob = bytearray(open(path, "rb").read())
        blob[second_starts + 12] ^= 0xFF  # a payload byte of frame 2
        with open(path, "wb") as handle:
            handle.write(blob)
        recovered = WriteAheadLog(path, sync="none")
        # Prefix semantics: the good frame *after* the corrupt one is
        # unreachable and is dropped with it.
        assert [r["op"] for r in recovered.replayed] == ["keep"]
        assert recovered.truncated_bytes > 0
        recovered.close()

    def test_foreign_file_is_refused_not_truncated(self, tmp_path):
        path = str(tmp_path / "notawal.bin")
        with open(path, "wb") as handle:
            handle.write(b"PNG\x89 definitely not ours, more than magic")
        with pytest.raises(StorageFormatError):
            WriteAheadLog(path)
        # Refusal must not have destroyed the foreign file.
        assert open(path, "rb").read().startswith(b"PNG\x89")

    def test_unknown_sync_mode_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            WriteAheadLog(str(tmp_path / "log.wal"), sync="eventually")


class TestDurableCollection:
    def test_restart_restores_documents_and_indexes(self, tmp_path):
        collection = durable(tmp_path, documents=copy.deepcopy(PEOPLE))
        collection.update_many(
            {"age": {"$gt": 30}}, {"$set": {"senior": "yes"}}
        )
        collection.remove(3)
        collection.insert({"name": "late", "age": 1})
        expected = values(collection)
        tables = collection.indexes.snapshot()
        collection.close()

        reopened = durable(tmp_path)
        assert values(reopened) == expected
        # Acceptance criterion: all index tables identical across the
        # restart, and equal to a from-scratch rebuild.
        assert reopened.indexes.snapshot() == tables
        assert_oracle(reopened)
        reopened.close()

    def test_doc_ids_and_tombstones_survive(self, tmp_path):
        collection = durable(tmp_path, documents=[{"k": 0}, {"k": 1}, {"k": 2}])
        collection.remove(1)
        collection.close()
        reopened = durable(tmp_path)
        assert reopened.doc_ids() == [0, 2]
        # Ids are never reused: the tombstone keeps its slot.
        assert reopened.insert({"k": 3}) == 3
        reopened.close()

    def test_queries_answer_identically_after_restart(self, tmp_path):
        collection = durable(tmp_path, documents=copy.deepcopy(PEOPLE))
        filter_doc = {"age": {"$gt": 25}, "hobbies": {"$size": 2}}
        before = collection.find(filter_doc)
        collection.close()
        reopened = durable(tmp_path)
        assert reopened.find(filter_doc) == before
        reopened.close()

    def test_schema_rejection_leaves_no_disk_trace(self, tmp_path):
        collection = durable(tmp_path, schema=SCHEMA)
        collection.insert({"name": "ok", "age": 10})
        clean = collection.engine.wal.size_bytes()
        with pytest.raises(DocumentRejectedError):
            collection.insert_many([{"name": "fine"}, {"age": 200}])
        # The WAL append happens *after* validation: the rejected batch
        # never touched the disk (nor, atomically, the first document).
        assert collection.engine.wal.size_bytes() == clean
        collection.close()
        reopened = durable(tmp_path, schema=SCHEMA)
        assert values(reopened) == {0: {"name": "ok", "age": 10}}
        reopened.close()

    def test_schema_enforced_against_recovered_state(self, tmp_path):
        collection = durable(tmp_path, schema=SCHEMA)
        collection.insert({"name": "ok"})
        collection.close()
        reopened = durable(tmp_path, schema=SCHEMA)
        with pytest.raises(DocumentRejectedError):
            reopened.insert({"age": 5})
        reopened.close()

    def test_engine_is_single_collection(self, tmp_path):
        engine = DurableEngine(str(tmp_path), sync="flush")
        first = Collection(engine=engine)
        with pytest.raises(StoreError):
            Collection(engine=engine)
        first.close()


class TestCompaction:
    def test_checkpoint_folds_wal_into_snapshot(self, tmp_path):
        collection = durable(tmp_path, documents=copy.deepcopy(PEOPLE))
        collection.update_many({}, {"$inc": {"age": 1}})
        expected = values(collection)
        report = collection.compact()
        assert report.wal_records == 2  # the insert batch + the update
        assert report.lsn == 2
        # The log is now empty (just the magic); state lives in the
        # snapshot.
        assert collection.engine.wal.size_bytes() == len(WAL_MAGIC)
        collection.close()
        reopened = durable(tmp_path)
        assert values(reopened) == expected
        assert_oracle(reopened)
        reopened.close()

    def test_auto_compaction_threshold(self, tmp_path):
        collection = durable(tmp_path, compact_threshold=5)
        for index in range(12):
            collection.insert({"n": index})
        # 12 commits with a threshold of 5: at least two checkpoints
        # happened and the log holds only the post-checkpoint tail.
        assert collection.engine.wal.records_since_reset < 5
        collection.close()
        reopened = durable(tmp_path)
        assert len(reopened) == 12
        assert_oracle(reopened)
        reopened.close()

    def test_replayed_backlog_counts_toward_threshold(self, tmp_path):
        collection = durable(tmp_path)
        for index in range(4):
            collection.insert({"n": index})
        collection.close()
        # Reopen with a threshold the existing backlog already exceeds:
        # the next commit must fold it.
        reopened = durable(tmp_path, compact_threshold=5)
        reopened.insert({"n": 4})
        assert reopened.engine.wal.records_since_reset == 0
        reopened.close()

    def test_interrupted_compaction_is_skipped_by_lsn(self, tmp_path):
        collection = durable(tmp_path, documents=[{"k": "a"}, {"k": "b"}])
        collection.update_many({"k": "a"}, {"$set": {"k": "z"}})
        stale_wal = open(str(tmp_path / "main.wal"), "rb").read()
        expected = values(collection)
        collection.compact()
        collection.close()
        # Simulate a crash between snapshot replace and WAL reset: the
        # old log (records the snapshot already covers) is still there.
        with open(str(tmp_path / "main.wal"), "wb") as handle:
            handle.write(stale_wal)
        reopened = durable(tmp_path)
        assert values(reopened) == expected
        assert_oracle(reopened)
        reopened.close()

    def test_lsn_continues_above_snapshot_after_reopen(self, tmp_path):
        """Regression: a freshly-reset WAL does not persist its base
        LSN, so a reopen must seed it from the snapshot's covering LSN
        -- or post-compaction commits get LSNs replay would skip as
        pre-snapshot, silently losing them on the *next* reopen."""
        collection = durable(tmp_path, documents=[{"k": 0}])
        collection.compact()  # snapshot covers LSN 1; WAL reset to empty
        collection.close()
        reopened = durable(tmp_path)
        assert reopened.engine.wal.lsn == 1
        reopened.insert({"k": 1})  # must be LSN 2, not a reissued LSN 1
        reopened.close()
        final = durable(tmp_path)
        assert values(final) == {0: {"k": 0}, 1: {"k": 1}}
        assert_oracle(final)
        final.close()

    def test_lsn_gap_in_committed_records_is_loud(self, tmp_path):
        with open(str(tmp_path / "main.wal"), "wb") as handle:
            handle.write(WAL_MAGIC)
            handle.write(frame({"lsn": 1, "op": "insert", "ids": [0], "docs": [{}]}))
            handle.write(frame({"lsn": 3, "op": "remove", "id": 0}))
        with pytest.raises(StorageFormatError):
            durable(tmp_path)

    def test_unknown_op_in_committed_record_is_loud(self, tmp_path):
        with open(str(tmp_path / "main.wal"), "wb") as handle:
            handle.write(WAL_MAGIC)
            handle.write(frame({"lsn": 1, "op": "defragment"}))
        with pytest.raises(StorageFormatError):
            durable(tmp_path)


class TestSnapshotVersioning:
    def test_snapshot_carries_format_and_version(self):
        collection = api.collection([{"a": 1}])
        snapshot = collection.snapshot()
        assert snapshot["format"] == "repro-collection-snapshot"
        assert snapshot["version"] == 1

    def test_roundtrip_through_from_snapshot(self):
        collection = api.collection(copy.deepcopy(PEOPLE))
        collection.remove(2)
        clone = Collection.from_snapshot(
            collection.snapshot(), engine=MemoryEngine()
        )
        assert values(clone) == values(collection)
        assert clone.doc_ids() == collection.doc_ids()
        assert clone.indexes.snapshot() == collection.indexes.snapshot()

    @pytest.mark.parametrize(
        "tamper",
        [
            {"version": 99},
            {"version": None},
            {"format": "repro-collection-snapshot-v2"},
            {"format": None},
        ],
    )
    def test_loader_refuses_unknown_format_or_version(self, tamper):
        snapshot = api.collection([{"a": 1}]).snapshot()
        snapshot.update(tamper)
        with pytest.raises(StorageFormatError):
            Collection.from_snapshot(snapshot, engine=MemoryEngine())

    def test_durable_snapshot_file_version_checked(self, tmp_path):
        collection = durable(tmp_path, documents=[{"a": 1}])
        collection.compact()
        collection.close()
        path = str(tmp_path / "main.snapshot.json")
        wrapper = json.load(open(path, encoding="utf-8"))
        wrapper["version"] = 2
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(wrapper, handle)
        with pytest.raises(StorageFormatError):
            durable(tmp_path)


class TestDatabase:
    def test_open_database_quickstart(self, tmp_path):
        with api.connect(tmp_path) as db:
            db.collection("people", documents=[{"name": "Sue"}, {"name": "Bob"}])
            db.collection("cities", documents=[{"city": "Oslo"}])
        with api.connect(tmp_path) as db:
            assert db.collection_names() == ["cities", "people"]
            assert len(db.collection("people")) == 2
            assert db.collection("cities").find({"city": "Oslo"})

    def test_memory_database_same_api(self):
        with Database() as db:
            assert not db.durable
            db.collection(documents=[{"a": 1}])
            assert db.collection_names() == ["main"]
            assert db.compact() == {}

    def test_handles_are_cached_per_name(self, tmp_path):
        with api.connect(tmp_path) as db:
            assert db.collection("x") is db.collection("x")
            with pytest.raises(StoreError):
                db.collection("x", schema=SCHEMA)

    def test_compact_sweeps_unopened_collections(self, tmp_path):
        with api.connect(tmp_path) as db:
            db.collection("a", documents=[{"n": 1}])
            db.collection("b", documents=[{"n": 2}])
        with api.connect(tmp_path) as db:
            reports = db.compact()
        assert sorted(reports) == ["a", "b"]
        assert all(report.lsn >= 1 for report in reports.values())

    def test_invalid_collection_name_rejected(self, tmp_path):
        with api.connect(tmp_path) as db:
            with pytest.raises(StoreError):
                db.collection("../escape")


class TestDeprecationShim:
    def test_engineless_construction_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="storage engine"):
            collection = Collection([{"a": 1}])
        assert len(collection) == 1
        assert isinstance(collection.engine, MemoryEngine)

    def test_blessed_spellings_do_not_warn(self, recwarn):
        api.collection([{"a": 1}])
        Collection([{"a": 1}], engine=MemoryEngine())
        with api.connect() as db:
            db.collection(documents=[{"a": 1}])
        assert not [
            warning
            for warning in recwarn.list
            if issubclass(warning.category, DeprecationWarning)
        ]

    def test_old_spellings_warn_but_work(self, tmp_path):
        from repro.mongo import memory_collection as mongo_memory
        from repro.store import (
            memory_collection,
            open_database,
            sharded_collection,
        )

        with pytest.warns(DeprecationWarning, match="repro.api.collection"):
            assert len(memory_collection([{"a": 1}])) == 1
        with pytest.warns(DeprecationWarning, match="repro.api.collection"):
            people = mongo_memory([{"name": "Sue"}])
        assert people.find({"name": "Sue"})
        with pytest.warns(DeprecationWarning, match="repro.api.connect"):
            with open_database(tmp_path) as db:
                db.collection(documents=[{"a": 1}])
        with pytest.warns(DeprecationWarning, match="shards=N"):
            with sharded_collection([{"a": 1}], shards=2, parallel=False) as sc:
                assert len(sc) == 1


def _random_op(rng, collection, mirror):
    """One committed mutation, applied to collection and mirror alike."""
    choice = rng.random()
    live = collection.doc_ids()
    if choice < 0.35 or not live:
        fresh = people_collection(rng.randrange(1, 4), seed=rng.randrange(9999))
        collection.insert_many(copy.deepcopy(fresh))
        mirror.extend(copy.deepcopy(fresh))
    elif choice < 0.55:
        victim = rng.choice(live)
        collection.remove(victim)
        mirror[victim] = None
    else:
        bound = rng.randrange(20, 60)
        result = collection.update_many(
            {"age": {"$gt": bound}},
            {"$inc": {"age": 1}, "$set": {"touched": "yes"}},
        )
        changed = 0
        for position, doc in enumerate(mirror):
            if doc is not None and doc.get("age", 0) > bound:
                doc["age"] += 1
                doc["touched"] = "yes"
                changed += 1
        assert result.matched_count == changed


class TestCrashRecovery:
    def test_truncation_at_every_frame_boundary(self, tmp_path):
        """The tentpole acceptance test: interrupt the workload at every
        WAL frame boundary; each cut recovers exactly the committed
        prefix of operations, with consistent indexes."""
        rng = random.Random(1234)
        workdir = tmp_path / "work"
        collection = durable(workdir)
        mirror: list = []
        boundaries = [collection.engine.wal.size_bytes()]
        states = [dict()]
        for _ in range(10 * _SCALE):
            _random_op(rng, collection, mirror)
            boundaries.append(collection.engine.wal.size_bytes())
            states.append(
                {
                    doc_id: copy.deepcopy(doc)
                    for doc_id, doc in enumerate(mirror)
                    if doc is not None
                }
            )
        collection.close()
        blob = open(str(workdir / "main.wal"), "rb").read()
        assert len(blob) == boundaries[-1]

        for step, edge in enumerate(boundaries):
            for cut in {edge, min(edge + 7, len(blob))}:
                casedir = tmp_path / f"case_{step}_{cut}"
                os.makedirs(casedir)
                with open(str(casedir / "main.wal"), "wb") as handle:
                    handle.write(blob[:cut])
                committed = max(
                    index
                    for index, boundary in enumerate(boundaries)
                    if boundary <= cut
                )
                recovered = durable(casedir)
                assert values(recovered) == states[committed], (step, cut)
                assert_oracle(recovered)
                recovered.close()

    def test_randomised_workload_with_restarts(self, tmp_path):
        """Many rounds of mutations with periodic restarts and
        compactions; the store must always equal the shadow model and
        pass the index oracle."""
        rng = random.Random(98)
        collection = durable(tmp_path, documents=copy.deepcopy(PEOPLE))
        mirror: list = copy.deepcopy(PEOPLE)
        for round_number in range(15 * _SCALE):
            _random_op(rng, collection, mirror)
            if rng.random() < 0.15:
                collection.compact()
            if rng.random() < 0.25:
                collection.close()
                collection = durable(tmp_path)
                expected = {
                    doc_id: doc
                    for doc_id, doc in enumerate(mirror)
                    if doc is not None
                }
                assert values(collection) == expected, round_number
                assert_oracle(collection)
        collection.close()
        reopened = durable(tmp_path)
        expected = {
            doc_id: doc for doc_id, doc in enumerate(mirror) if doc is not None
        }
        assert values(reopened) == expected
        assert_oracle(reopened)
        reopened.close()
