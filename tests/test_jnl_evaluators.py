"""JNL evaluation: reference semantics vs the Proposition 1/3 engine."""

from __future__ import annotations

import random

import pytest

from repro.jnl import ast
from repro.jnl import builder as q
from repro.jnl.efficient import JNLEvaluator, evaluate_unary, target_nodes
from repro.jnl.evaluator import eval_binary, eval_unary
from repro.jnl.parser import parse_jnl, parse_jnl_path
from repro.model.tree import JSONTree
from repro.workloads import TreeShape, random_jnl_unary, random_tree


class TestBinarySemantics:
    def test_eps_is_identity(self, figure1_doc):
        pairs = eval_binary(figure1_doc, ast.Eps())
        assert pairs == {(n, n) for n in figure1_doc.nodes()}

    def test_key_axis(self, figure1_doc):
        pairs = eval_binary(figure1_doc, ast.Key("name"))
        assert pairs == {
            (figure1_doc.root, figure1_doc.object_child(figure1_doc.root, "name"))
        }

    def test_index_axis_only_on_arrays(self, figure1_doc):
        pairs = eval_binary(figure1_doc, ast.Index(0))
        hobbies = figure1_doc.object_child(figure1_doc.root, "hobbies")
        assert pairs == {(hobbies, figure1_doc.array_child(hobbies, 0))}

    def test_negative_index(self, figure1_doc):
        hobbies = figure1_doc.object_child(figure1_doc.root, "hobbies")
        pairs = eval_binary(figure1_doc, ast.Index(-1))
        assert (hobbies, figure1_doc.array_child(hobbies, 1)) in pairs

    def test_star_reflexive_transitive(self, figure1_doc):
        pairs = eval_binary(figure1_doc, ast.Star(ast.Key("name")))
        root = figure1_doc.root
        name = figure1_doc.object_child(root, "name")
        assert (root, root) in pairs
        assert (root, name) in pairs

    def test_union(self, figure1_doc):
        pairs = eval_binary(
            figure1_doc, ast.Union(ast.Key("name"), ast.Key("age"))
        )
        assert len(pairs) == 2


class TestUnarySemantics:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("has(.name.first)", True),
            ("has(.name.middle)", False),
            ("matches(.age, 32)", True),
            ("matches(.age, 33)", False),
            ('matches(.name, {"last": "Doe", "first": "John"})', True),
            ("eq(.name, .name)", True),
            ("eq(.name.first, .name.last)", False),
            ("has(.hobbies[-1])", True),
            ('has((.*|[*])*<matches(eps, "yoga")>)', True),
            ("not has(.x)", True),
            ("test(object)", True),
            ("has(.age<test(min(31))>)", True),
            ("has(.age<test(min(32))>)", False),
        ],
    )
    def test_at_root(self, figure1_doc, text, expected):
        formula = parse_jnl(text)
        assert (figure1_doc.root in eval_unary(figure1_doc, formula)) == expected
        assert (
            figure1_doc.root in evaluate_unary(figure1_doc, formula)
        ) == expected

    def test_subtree_equality_not_atomic(self):
        # EQ compares whole subtrees, the Section 3.2 point.
        doc = JSONTree.from_value({"a": {"x": [1, 2]}, "b": {"x": [1, 2]}})
        assert doc.root in evaluate_unary(doc, parse_jnl("eq(.a, .b)"))
        doc2 = JSONTree.from_value({"a": {"x": [1, 2]}, "b": {"x": [2, 1]}})
        assert doc2.root not in evaluate_unary(doc2, parse_jnl("eq(.a, .b)"))

    def test_eqpath_nondeterministic(self):
        doc = JSONTree.from_value({"a": [1, 2, 3], "b": 3})
        formula = parse_jnl("eq(.a[*], .b)")
        assert doc.root in evaluate_unary(doc, formula)
        assert doc.root in eval_unary(doc, formula)
        doc2 = JSONTree.from_value({"a": [1, 2], "b": 3})
        assert doc2.root not in evaluate_unary(doc2, formula)

    def test_paper_unsat_pattern_evaluates_false(self):
        # X_a<[X_0]> ^ X_a<[X_b]> cannot hold: value can't be array+object.
        formula = parse_jnl("has(.a<has([0])>) and has(.a<has(.b)>)")
        for value in ({"a": [1]}, {"a": {"b": 1}}, {"a": 5}):
            doc = JSONTree.from_value(value)
            assert doc.root not in evaluate_unary(doc, formula)


class TestTargets:
    def test_forward_targets(self, figure1_doc):
        path = parse_jnl_path(".hobbies[*]")
        targets = target_nodes(figure1_doc, path)
        values = sorted(figure1_doc.value(node) for node in targets)
        assert values == ["fishing", "yoga"]

    def test_star_targets_include_start(self, figure1_doc):
        path = parse_jnl_path("(.*)*")
        targets = target_nodes(figure1_doc, path)
        assert figure1_doc.root in targets


class TestEvaluatorAgreement:
    """Differential: the efficient engine equals the reference semantics."""

    @pytest.mark.parametrize("seed", range(30))
    def test_random_formulas_random_trees(self, seed):
        rng = random.Random(seed)
        tree = random_tree(seed, TreeShape(max_depth=4, max_children=4))
        formula = random_jnl_unary(rng, depth=3)
        reference = eval_unary(tree, formula)
        efficient = evaluate_unary(tree, formula)
        assert reference == set(efficient)

    @pytest.mark.parametrize("seed", range(20))
    def test_deterministic_fragment(self, seed):
        rng = random.Random(seed * 101 + 7)
        tree = random_tree(seed + 1000, TreeShape(max_depth=4, max_children=4))
        formula = random_jnl_unary(rng, depth=3, deterministic=True)
        assert eval_unary(tree, formula) == set(evaluate_unary(tree, formula))

    def test_memoisation_shares_subformulas(self, figure1_doc):
        evaluator = JNLEvaluator(figure1_doc)
        formula = parse_jnl("has(.name) and (has(.name) or has(.age))")
        evaluator.nodes_satisfying(formula)
        assert parse_jnl("has(.name)") in evaluator._node_sets


class TestDeepEvaluation:
    def test_star_on_deep_chain(self):
        from repro.workloads import deep_chain

        depth = 5000
        tree = deep_chain(depth)
        formula = q.has(q.compose(q.star(q.key("a")), q.test(
            q.eq_doc(q.eps(), "0"))))
        satisfied = evaluate_unary(tree, formula)
        assert tree.root in satisfied
        assert len(satisfied) == depth + 1
