"""Theorem 2: JNL <-> JSL translations (both directions)."""

from __future__ import annotations

import random

import pytest

from repro.errors import UnsupportedFragmentError
from repro.jnl import ast as jnl
from repro.jnl.efficient import evaluate_unary
from repro.jnl.parser import parse_jnl
from repro.jsl import RecursiveJSL, ast as jsl_ast
from repro.jsl.bottom_up import RecursiveJSLEvaluator
from repro.jsl.evaluator import nodes_satisfying
from repro.jsl.parser import parse_jsl_formula
from repro.jsl.recursion import check_well_formed
from repro.translate import jnl_to_jsl, jsl_to_jnl
from repro.workloads import (
    TreeShape,
    random_jnl_unary,
    random_jsl_formula,
    random_tree,
)


class TestJSLToJNL:
    @pytest.mark.parametrize("seed", range(30))
    def test_node_sets_agree(self, seed):
        rng = random.Random(seed)
        formula = random_jsl_formula(rng, depth=3)
        translated = jsl_to_jnl(formula)
        tree = random_tree(seed + 17, TreeShape(max_depth=4, max_children=4))
        assert set(nodes_satisfying(tree, formula)) == set(
            evaluate_unary(tree, translated)
        )

    def test_eqdoc_test_becomes_eq_eps(self):
        formula = parse_jsl_formula("value(32)")
        translated = jsl_to_jnl(formula)
        assert isinstance(translated, jnl.EqDoc)
        assert isinstance(translated.path, jnl.Eps)

    def test_strict_mode_rejects_other_node_tests(self):
        with pytest.raises(UnsupportedFragmentError):
            jsl_to_jnl(parse_jsl_formula("unique"), strict=True)

    def test_strict_mode_allows_eqdoc(self):
        jsl_to_jnl(parse_jsl_formula("value(1) and some(.a, true)"), strict=True)

    def test_refs_rejected(self):
        with pytest.raises(UnsupportedFragmentError):
            jsl_to_jnl(jsl_ast.Ref("g"))

    def test_polynomial_size(self):
        # JSL -> JNL is linear-ish: each operator maps to O(1) operators.
        rng = random.Random(4)
        formula = random_jsl_formula(rng, depth=5)
        translated = jsl_to_jnl(formula)
        assert jnl.formula_size(translated) <= 6 * jsl_ast.formula_size(formula)


class TestJNLToJSL:
    @pytest.mark.parametrize("seed", range(30))
    def test_star_free_node_sets_agree(self, seed):
        rng = random.Random(seed + 300)
        formula = random_jnl_unary(rng, depth=3, allow_star=False,
                                   allow_eqpath=False)
        translated = jnl_to_jsl(formula)
        assert not isinstance(translated, RecursiveJSL)
        tree = random_tree(seed + 23, TreeShape(max_depth=4, max_children=4))
        assert set(evaluate_unary(tree, formula)) == set(
            nodes_satisfying(tree, translated)
        )

    @pytest.mark.parametrize("seed", range(25))
    def test_recursive_node_sets_agree(self, seed):
        rng = random.Random(seed + 900)
        formula = random_jnl_unary(rng, depth=3, allow_star=True,
                                   allow_eqpath=False)
        translated = jnl_to_jsl(formula)
        tree = random_tree(seed + 51, TreeShape(max_depth=4, max_children=4))
        jnl_nodes = set(evaluate_unary(tree, formula))
        if isinstance(translated, RecursiveJSL):
            check_well_formed(translated)
            jsl_nodes = set(
                RecursiveJSLEvaluator(tree, translated).nodes_satisfying_base()
            )
        else:
            jsl_nodes = set(nodes_satisfying(tree, translated))
        assert jnl_nodes == jsl_nodes

    def test_star_produces_guarded_definitions(self):
        formula = parse_jnl("has((.*|[*])* <matches(eps, \"x\")>)")
        translated = jnl_to_jsl(formula)
        assert isinstance(translated, RecursiveJSL)
        check_well_formed(translated)

    def test_nested_stars(self):
        formula = parse_jnl("has(((.a)*(.b)*)* .c)")
        translated = jnl_to_jsl(formula)
        assert isinstance(translated, RecursiveJSL)
        check_well_formed(translated)
        from repro.model.tree import JSONTree

        doc = JSONTree.from_value({"a": {"b": {"a": {"c": 1}}}})
        jnl_nodes = set(evaluate_unary(doc, formula))
        jsl_nodes = set(
            RecursiveJSLEvaluator(doc, translated).nodes_satisfying_base()
        )
        assert jnl_nodes == jsl_nodes

    def test_eqpath_rejected(self):
        with pytest.raises(UnsupportedFragmentError):
            jnl_to_jsl(parse_jnl("eq(.a, .b)"))

    def test_negative_index_rejected(self):
        with pytest.raises(UnsupportedFragmentError):
            jnl_to_jsl(parse_jnl("has(.a[-1])"))

    def test_exponential_blowup_exists(self):
        # Chains of unions duplicate the continuation at every step:
        # T((a u b) o rest, k) = T(a, T(rest,k)) v T(b, T(rest,k)).
        # This is the Theorem 2 worst case (the paper's xA1 v A2y o ...
        # example); output size must grow exponentially in n.
        def chained(n: int) -> jnl.Unary:
            step = jnl.Union(jnl.Key("a"), jnl.Key("b"))
            path: jnl.Binary = step
            for _ in range(n - 1):
                path = jnl.Compose(step, path)
            return jnl.Exists(path)

        sizes = []
        for n in (2, 4, 6, 8):
            translated = jnl_to_jsl(chained(n))
            assert not isinstance(translated, RecursiveJSL)
            sizes.append(jsl_ast.formula_size(translated))
        # Doubling n should roughly square the ratio: check 4x growth.
        assert sizes[1] >= 3 * sizes[0]
        assert sizes[2] >= 3 * sizes[1]
        assert sizes[3] >= 3 * sizes[2]


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(15))
    def test_jsl_jnl_jsl(self, seed):
        rng = random.Random(seed + 50)
        formula = random_jsl_formula(rng, depth=2)
        there = jsl_to_jnl(formula)
        back = jnl_to_jsl(there)
        tree = random_tree(seed + 3, TreeShape(max_depth=3, max_children=3))
        original = set(nodes_satisfying(tree, formula))
        if isinstance(back, RecursiveJSL):
            returned = set(
                RecursiveJSLEvaluator(tree, back).nodes_satisfying_base()
            )
        else:
            returned = set(nodes_satisfying(tree, back))
        assert original == returned
