"""Bulk validation APIs and batch tree ingestion."""

from __future__ import annotations

import pytest

from repro.model.tree import JSONTree
from repro.schema.parser import parse_schema
from repro.schema.validator import SchemaValidator
from repro.validate import (
    compile_schema_validator,
    iter_validate,
    validate_corpus,
    validate_document,
)
from repro.workloads import people_collection

PERSON_SCHEMA = parse_schema(
    {
        "type": "object",
        "required": ["id", "name", "age"],
        "properties": {
            "id": {"type": "number"},
            "age": {"type": "number", "minimum": 0, "maximum": 120},
            "name": {
                "type": "object",
                "required": ["first", "last"],
                "additionalProperties": {"type": "string"},
            },
        },
    }
)


@pytest.fixture
def validator():
    return compile_schema_validator(PERSON_SCHEMA)


@pytest.fixture
def corpus():
    people = people_collection(20, seed=3)
    people[7] = {"id": 7, "name": {"first": "No"}, "age": 30}     # invalid
    people[13] = {"id": 13, "name": {"first": "X", "last": "Y"}}  # invalid
    return people


class TestValidateCorpus:
    def test_matches_seed_validator(self, validator, corpus):
        report = validate_corpus(validator, corpus)
        seed = SchemaValidator(PERSON_SCHEMA)
        expected = [seed.validate_value(doc) for doc in corpus]
        assert list(report.verdicts) == expected
        assert report.checked == len(corpus)
        assert report.valid == sum(expected)
        assert report.invalid == len(corpus) - sum(expected)
        assert report.first_invalid == 7
        assert not report.all_valid

    def test_early_exit_stops_at_first_invalid(self, validator, corpus):
        report = validate_corpus(validator, corpus, early_exit=True)
        assert report.checked == 8          # docs 0..7
        assert report.first_invalid == 7
        assert report.verdicts[-1] is False

    def test_all_valid_report(self, validator):
        corpus = people_collection(5, seed=9)
        report = validate_corpus(validator, corpus)
        assert report.all_valid
        assert report.first_invalid is None
        assert report.valid == report.checked == 5

    def test_accepts_trees_and_values_mixed(self, validator, corpus):
        mixed = [
            JSONTree.from_value(doc) if index % 2 else doc
            for index, doc in enumerate(corpus)
        ]
        assert validate_corpus(validator, mixed).verdicts == validate_corpus(
            validator, corpus
        ).verdicts

    def test_as_trees_materialises_with_shared_interning(self, validator, corpus):
        report = validate_corpus(validator, corpus, as_trees=True)
        assert report.verdicts == validate_corpus(validator, corpus).verdicts

    def test_extended_values_are_coerced(self, validator):
        # Booleans are outside the strict abstraction; extended=True
        # coerces them to strings, so "name" fails its object type.
        doc = {"id": 1, "name": True, "age": 4}
        report = validate_corpus(validator, [doc], extended=True)
        assert report.verdicts == (False,)


class TestIterValidate:
    def test_streams_lazily(self, validator, corpus):
        seen = []

        def generator():
            for doc in corpus:
                seen.append(doc)
                yield doc

        results = iter_validate(validator, generator())
        assert next(results) is True
        assert len(seen) == 1  # only one document consumed so far
        rest = list(results)
        assert len(rest) == len(corpus) - 1


class TestValidateDocument:
    def test_many_validators_one_document(self, corpus):
        schemas = [
            PERSON_SCHEMA,
            parse_schema({"type": "object", "required": ["id"]}),
            parse_schema({"type": "array"}),
            parse_schema({"not": {"type": "array"}}),
        ]
        validators = [compile_schema_validator(schema) for schema in schemas]
        verdicts = validate_document(validators, corpus[0])
        assert verdicts == [True, True, False, True]
        # Same answers when the document is already a tree.
        tree = JSONTree.from_value(corpus[0])
        assert validate_document(validators, tree) == verdicts


class TestFromValuesBatchIngestion:
    def test_trees_equal_individual_construction(self):
        values = people_collection(10, seed=5)
        batch = JSONTree.from_values(values)
        assert len(batch) == len(values)
        for tree, value in zip(batch, values):
            assert tree == JSONTree.from_value(value)

    def test_keys_are_interned_across_trees(self):
        batch = JSONTree.from_values([{"shared": 1}, {"shared": 2}])
        key_a = next(iter(batch[0].object_keys(batch[0].root)))
        key_b = next(iter(batch[1].object_keys(batch[1].root)))
        assert key_a == key_b == "shared"
        assert key_a is key_b  # one str object across the whole corpus

    def test_string_atoms_are_interned_across_trees(self):
        batch = JSONTree.from_values([["yoga"], ["yoga"]])
        atom_a = batch[0].value(batch[0].array_child(batch[0].root, 0))
        atom_b = batch[1].value(batch[1].array_child(batch[1].root, 0))
        assert atom_a is atom_b

    def test_extended_coercion(self):
        (tree,) = JSONTree.from_values([[True, None]], extended=True)
        assert tree.to_value() == ["true", "null"]

    def test_empty_batch(self):
        assert JSONTree.from_values([]) == []
