"""Direct unit tests of the shared NodeTests vocabulary (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.automata.keylang import KeyLang
from repro.logic import nodetests as nt
from repro.model.tree import JSONTree


def holds(value, test, **kwargs) -> bool:
    tree = JSONTree.from_value(value)
    return nt.node_test_holds(tree, tree.root, test, **kwargs)


class TestKindTests:
    @pytest.mark.parametrize(
        "value,test,expected",
        [
            ({}, nt.IsObject(), True),
            ([], nt.IsObject(), False),
            ([], nt.IsArray(), True),
            ("x", nt.IsString(), True),
            (0, nt.IsNumber(), True),
            (0, nt.IsString(), False),
        ],
    )
    def test_kinds(self, value, test, expected):
        assert holds(value, test) == expected


class TestValueTests:
    def test_min_is_strict(self):
        assert holds(5, nt.MinVal(4))
        assert not holds(4, nt.MinVal(4))

    def test_max_is_strict(self):
        assert holds(3, nt.MaxVal(4))
        assert not holds(4, nt.MaxVal(4))

    def test_min_max_only_on_numbers(self):
        assert not holds("5", nt.MinVal(0))
        assert not holds([5], nt.MaxVal(99))

    def test_multof_zero_means_zero(self):
        assert holds(0, nt.MultOf(0))
        assert not holds(2, nt.MultOf(0))

    def test_pattern_on_strings_only(self):
        pattern = nt.Pattern(KeyLang.regex("[0-9]+"))
        assert holds("123", pattern)
        assert not holds(123, pattern)

    def test_eqdoc_structural(self):
        test = nt.EqDocTest(JSONTree.from_value({"a": [1]}))
        assert holds({"a": [1]}, test)
        assert not holds({"a": [2]}, test)
        assert test.doc_hash() == nt.EqDocTest(
            JSONTree.from_value({"a": [1]})
        ).doc_hash()


class TestChildCounts:
    def test_minch_counts_objects_and_arrays(self):
        assert holds({"a": 1, "b": 2}, nt.MinCh(2))
        assert holds([1, 2, 3], nt.MinCh(3))
        assert not holds([1], nt.MinCh(2))

    def test_maxch_on_leaves(self):
        assert holds("leaf", nt.MaxCh(0))
        assert holds(7, nt.MaxCh(5))

    def test_unique_requires_array(self):
        assert not holds({"a": 1}, nt.Unique())
        assert holds([1, 2], nt.Unique())
        assert not holds([1, 1], nt.Unique())

    def test_unique_exact_mode_agrees(self):
        for value in ([1, 1], [1, 2, 3], [[0], [0]]):
            assert holds(value, nt.Unique(), exact_unique=True) == holds(
                value, nt.Unique(), exact_unique=False
            )


class TestDescribe:
    @pytest.mark.parametrize(
        "test,expected",
        [
            (nt.IsObject(), "Obj"),
            (nt.IsArray(), "Arr"),
            (nt.IsString(), "Str"),
            (nt.IsNumber(), "Int"),
            (nt.Unique(), "Unique"),
            (nt.MinVal(3), "Min(3)"),
            (nt.MaxVal(9), "Max(9)"),
            (nt.MultOf(2), "MultOf(2)"),
            (nt.MinCh(1), "MinCh(1)"),
            (nt.MaxCh(4), "MaxCh(4)"),
        ],
    )
    def test_descriptions(self, test, expected):
        assert test.describe() == expected

    def test_hashable_and_interned_equal(self):
        assert nt.MinVal(3) == nt.MinVal(3)
        assert hash(nt.MinVal(3)) == hash(nt.MinVal(3))
        assert nt.MinVal(3) != nt.MaxVal(3)
