"""The compiled validation pipeline: differential and edge-case tests.

The compiled validators must agree with the seed interpreters on the
whole supported fragment -- ``SchemaValidator`` for schemas, the
set-at-a-time ``JSLEvaluator`` for formulas, and the streaming
validator on the deterministic fragment -- on both backends (tree and
raw value).
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.cache import LRUCache
from repro.errors import (
    SchemaError,
    TranslationError,
    UnsupportedFragmentError,
    WellFormednessError,
)
from repro.jsl import ast as jsl
from repro.jsl.evaluator import JSLEvaluator
from repro.jsl.parser import parse_jsl_formula
from repro.model.tree import JSONTree
from repro.schema.parser import parse_schema
from repro.schema.to_jsl import schema_to_jsl
from repro.schema.validator import SchemaValidator, validates, validates_value
from repro.streaming.validator import StreamingJSLValidator
from repro.validate import (
    clear_artifact_cache,
    compile_jsl_validator,
    compile_schema_validator,
    compile_stream_validator,
)
from repro.workloads import (
    TreeShape,
    random_jsl_formula,
    random_schema_value,
    random_value,
)


def both_backends(validator, value):
    """Assert tree and raw-value backends agree; return the verdict."""
    tree_verdict = validator.validate_tree(JSONTree.from_value(value))
    value_verdict = validator.validate_value(value)
    assert tree_verdict == value_verdict, value
    return value_verdict


class TestCompiledSchemaDifferential:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_schemas_on_random_documents(self, seed):
        rng = random.Random(seed)
        schema = parse_schema(random_schema_value(rng, depth=3))
        compiled = compile_schema_validator(schema, cache=None)
        reference = SchemaValidator(schema)
        for doc_seed in range(6):
            doc_rng = random.Random(1000 * seed + doc_seed)
            value = random_value(
                doc_rng, TreeShape(max_depth=4, max_children=4)
            )
            tree = JSONTree.from_value(value)
            expected = reference.validate(tree)
            assert compiled.validate_tree(tree) == expected
            assert compiled.validate_value(value) == expected

    @pytest.mark.parametrize("seed", range(12))
    def test_streaming_agrees_on_supported_fragment(self, seed):
        rng = random.Random(seed + 77)
        schema = parse_schema(random_schema_value(rng, depth=2))
        try:
            stream = StreamingJSLValidator(schema_to_jsl(schema))
        except UnsupportedFragmentError:
            pytest.skip("schema outside the deterministic fragment")
        compiled = compile_schema_validator(schema, cache=None)
        for doc_seed in range(4):
            doc_rng = random.Random(9000 + 100 * seed + doc_seed)
            tree = JSONTree.from_value(
                random_value(doc_rng, TreeShape(max_depth=3, max_children=3))
            )
            assert stream.validate_text(tree.to_json()) == compiled.validate_tree(
                tree
            )


class TestCompiledSchemaEdgeCases:
    def test_empty_containers(self):
        schema = parse_schema(
            {
                "type": "object",
                "properties": {
                    "o": {"type": "object", "maxProperties": 0},
                    "a": {"type": "array", "uniqueItems": True},
                },
            }
        )
        compiled = compile_schema_validator(schema)
        assert both_backends(compiled, {})
        assert both_backends(compiled, {"o": {}, "a": []})
        assert not both_backends(compiled, {"o": {"x": 1}})

    def test_empty_items_list(self):
        # items: [] requires nothing; extras still need additionalItems.
        schema = parse_schema({"type": "array", "items": []})
        compiled = compile_schema_validator(schema)
        assert both_backends(compiled, [])
        assert not both_backends(compiled, [1])

    def test_unicode_and_confusable_keys(self):
        # NFC "\u00e9" vs NFD "e\u0301" spell *distinct* keys, as do
        # keys differing only by case or by trailing whitespace.
        nfc = "cl\u00e9"
        nfd = "cle\u0301"
        assert nfc != nfd
        schema = parse_schema(
            {
                "type": "object",
                "required": [nfc],
                "properties": {
                    nfc: {"type": "number"},
                    nfd: {"type": "string"},
                    "Key": {"type": "number"},
                    "key ": {"type": "string"},
                },
            }
        )
        compiled = compile_schema_validator(schema)
        reference = SchemaValidator(schema)
        for value in [
            {nfc: 1, nfd: "x"},
            {nfd: "x"},              # the NFD twin does not satisfy required
            {nfc: "not a number"},
            {nfc: 1, "Key": 2, "key ": "pad"},
            {nfc: 1, "Key": "not a number"},
            {nfc: 1, "\u043a\u043b\u044e\u0447": 7, "\u9375": "k"},
        ]:
            expected = reference.validate(JSONTree.from_value(value))
            assert both_backends(compiled, value) == expected

    def test_duplicate_ish_array_items(self):
        schema = parse_schema({"type": "array", "uniqueItems": True})
        compiled = compile_schema_validator(schema)
        assert both_backends(compiled, [1, "1"])          # int vs string
        assert both_backends(compiled, [[], {}])          # array vs object
        assert not both_backends(compiled, [{"a": 1, "b": 2}, {"b": 2, "a": 1}])
        assert both_backends(compiled, [["k", "v"], {"k": "v"}])

    def test_deep_nesting_near_recursion_limit(self):
        schema = parse_schema(
            {
                "$ref": "#/definitions/chain",
                "definitions": {
                    "chain": {
                        "anyOf": [
                            {"type": "number"},
                            {
                                "type": "object",
                                "required": ["next"],
                                "properties": {
                                    "next": {"$ref": "#/definitions/chain"}
                                },
                            },
                        ]
                    }
                },
            }
        )
        compiled = compile_schema_validator(schema)
        reference = SchemaValidator(schema)
        depth = 400
        good: object = 0
        for _ in range(depth):
            good = {"next": good}
        bad_core: object = "leaf"
        for _ in range(depth):
            bad_core = {"next": bad_core}
        limit = sys.getrecursionlimit()
        # The seed interpreter costs ~10 Python frames per document
        # level; give both validators the same generous headroom.
        sys.setrecursionlimit(max(limit, 50 * depth))
        try:
            tree_good = JSONTree.from_value(good)
            tree_bad = JSONTree.from_value(bad_core)
            assert reference.validate(tree_good)
            assert compiled.validate_tree(tree_good)
            assert compiled.validate_value(good)
            assert not reference.validate(tree_bad)
            assert not compiled.validate_tree(tree_bad)
            assert not compiled.validate_value(bad_core)
        finally:
            sys.setrecursionlimit(limit)

    def test_enum_value_backend_matches_tree_equality(self):
        schema = parse_schema(
            {"enum": [{"k": [1, 2]}, "x", 3, [{"a": 0}]]}
        )
        compiled = compile_schema_validator(schema)
        for value, expected in [
            ({"k": [1, 2]}, True),
            ({"k": [2, 1]}, False),
            ("x", True),
            (3, True),
            ([{"a": 0}], True),
            ([{"a": 0, "b": 0}], False),
            ({}, False),
        ]:
            assert both_backends(compiled, value) == expected

    def test_recursion_guarded_by_structure(self):
        schema = parse_schema(
            {
                "type": "object",
                "properties": {"tree": {"$ref": "#/definitions/t"}},
                "definitions": {
                    "t": {
                        "anyOf": [
                            {"type": "string"},
                            {
                                "type": "array",
                                "additionalItems": {"$ref": "#/definitions/t"},
                            },
                        ]
                    }
                },
            }
        )
        compiled = compile_schema_validator(schema)
        assert both_backends(compiled, {"tree": [["a", "b"], "c", [["d"]]]})
        assert not both_backends(compiled, {"tree": [["a", 1]]})

    def test_unresolved_ref_rejected(self):
        from repro.schema import ast

        with pytest.raises(SchemaError, match="unresolved"):
            compile_schema_validator(ast.RefSchema("nope"), cache=None)

    def test_ill_formed_recursion_rejected(self):
        source = {
            "$ref": "#/definitions/a",
            "definitions": {"a": {"not": {"$ref": "#/definitions/a"}}},
        }
        with pytest.raises(WellFormednessError):
            compile_schema_validator(parse_schema(source), cache=None)

    def test_one_shot_helpers_use_compiled_path(self):
        schema = parse_schema({"type": "number", "minimum": 3})
        assert validates(schema, JSONTree.from_value(5))
        assert not validates_value(schema, 2)

    def test_validates_value_keeps_seed_strictness(self):
        # The legacy helper still rejects out-of-abstraction leaves
        # anywhere, even in positions the schema never inspects; only
        # CompiledValidator.validate_value checks lazily.
        from repro.errors import UnsupportedValueError

        schema = parse_schema({"type": "object", "required": ["a"]})
        with pytest.raises(UnsupportedValueError):
            validates_value(schema, {"a": 1.5})
        assert compile_schema_validator(schema).validate_value({"a": 1.5})

    def test_exact_unique_parity(self):
        schema = parse_schema({"type": "array", "uniqueItems": True})
        exact = compile_schema_validator(schema, exact_unique=True)
        fast = compile_schema_validator(schema, exact_unique=False)
        assert exact is not fast  # separate cache entries
        for value in ([1, 2, 1], [{"a": 1}, {"a": 1}], ["x", "y"]):
            assert both_backends(exact, value) == both_backends(fast, value)


class TestCompiledJSL:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_formulas_match_reference_evaluator(self, seed):
        rng = random.Random(seed)
        formula = random_jsl_formula(rng, depth=4)
        compiled = compile_jsl_validator(formula, cache=None)
        for doc_seed in range(5):
            doc_rng = random.Random(5000 + 100 * seed + doc_seed)
            value = random_value(
                doc_rng, TreeShape(max_depth=4, max_children=4)
            )
            tree = JSONTree.from_value(value)
            expected = JSLEvaluator(tree).satisfies(formula)
            assert compiled.validate_tree(tree) == expected
            assert compiled.validate_value(value) == expected

    @pytest.mark.parametrize("seed", range(20))
    def test_point_evaluation_at_every_node(self, seed):
        rng = random.Random(seed + 31)
        formula = random_jsl_formula(rng, depth=3)
        compiled = compile_jsl_validator(formula, cache=None)
        tree = JSONTree.from_value(
            random_value(random.Random(seed), TreeShape(max_depth=3))
        )
        reference = JSLEvaluator(tree)
        for node in tree.nodes():
            assert compiled.validate_tree(tree, node) == reference.satisfies(
                formula, node
            )

    def test_recursive_expression(self):
        # A linked-list shape: gamma holds on leaves and on nodes whose
        # "next" child satisfies gamma again (guarded recursion).
        from repro.automata.keylang import KeyLang
        from repro.logic.nodetests import MaxCh

        gamma = jsl.RecursiveJSL.make(
            {
                "g": jsl.Or(
                    jsl.TestAtom(MaxCh(0)),
                    jsl.DiaKey(KeyLang.word("next"), jsl.Ref("g")),
                )
            },
            jsl.Ref("g"),
        )
        compiled = compile_jsl_validator(gamma, cache=None)
        assert both_backends(compiled, {"next": {"next": "end"}})
        assert not both_backends(compiled, {"other": 1})

    def test_plain_formula_with_ref_rejected(self):
        with pytest.raises(TranslationError):
            compile_jsl_validator(jsl.Ref("loose"), cache=None)

    def test_parsed_formula_smoke(self):
        formula = parse_jsl_formula(
            "some(.age, number and min(17)) and all(.tags, all([0:], string))"
        )
        compiled = compile_jsl_validator(formula)
        assert both_backends(
            compiled, {"age": 30, "tags": ["a", "b"]}
        )
        assert not both_backends(
            compiled, {"age": 30, "tags": ["a", 3]}
        )


class TestValidatorCaching:
    def test_schema_compile_is_cached_by_structure(self):
        cache = LRUCache(capacity=8)
        schema_a = parse_schema({"type": "number", "minimum": 1})
        schema_b = parse_schema({"type": "number", "minimum": 1})
        first = compile_schema_validator(schema_a, cache=cache)
        second = compile_schema_validator(schema_b, cache=cache)
        assert first is second  # structural equality shares the program
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_jsl_and_schema_share_one_cache_namespace(self):
        cache = LRUCache(capacity=8)
        schema = parse_schema({"type": "string"})
        formula = parse_jsl_formula("string")
        compile_schema_validator(schema, cache=cache)
        compile_jsl_validator(formula, cache=cache)
        compile_stream_validator(formula, cache=cache)
        assert len(cache) == 3
        assert cache.stats().misses == 3

    def test_global_cache_round_trip(self):
        clear_artifact_cache()
        try:
            schema = parse_schema({"type": "object", "required": ["zz-test"]})
            first = compile_schema_validator(schema)
            again = compile_schema_validator(parse_schema(schema.to_value()))
            assert first is again
        finally:
            clear_artifact_cache()

    def test_query_plans_and_validators_share_one_cache(self):
        from repro.cache import artifact_cache
        from repro.query import compile_query, query_cache

        # The PR-1 query cache and the validator cache are the same
        # process-wide instance (unified stats).
        assert query_cache() is artifact_cache()
        cache = LRUCache(capacity=8)
        compile_query("$.a", "jsonpath", cache=cache)
        compile_schema_validator(parse_schema({"type": "string"}), cache=cache)
        stats = cache.stats()
        assert len(cache) == 2
        assert (stats.hits, stats.misses) == (0, 2)

    def test_stream_validator_cached_and_reusable(self):
        cache = LRUCache(capacity=4)
        schema = parse_schema(
            {"type": "object", "properties": {"a": {"type": "number"}}}
        )
        validator = compile_stream_validator(schema, cache=cache)
        assert validator is compile_stream_validator(schema, cache=cache)
        assert validator.validate_text('{"a": 3}')
        assert not validator.validate_text('{"a": "x"}')
