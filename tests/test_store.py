"""The document store: collections, index maintenance, schema enforcement."""

from __future__ import annotations

import random

import pytest

from repro.errors import DocumentRejectedError, StoreError
from repro.model.tree import JSONTree
from repro.store import Collection, DocumentIndexes
from repro.store.indexes import index_entries
from repro import api

PEOPLE = [
    {"name": {"first": "Sue", "last": "Doe"}, "age": 35,
     "hobbies": ["yoga", "chess"]},
    {"name": {"first": "Bob", "last": "Chen"}, "age": 28, "hobbies": []},
    {"name": {"first": "Ana", "last": "Doe"}, "age": 61,
     "address": {"city": "Talca"}},
]


def rebuilt(collection: Collection) -> DocumentIndexes:
    """Full-rescan reference: fresh indexes over the live documents."""
    fresh = DocumentIndexes()
    for doc_id, tree in collection.documents():
        fresh.add(doc_id, tree)
    return fresh


class TestCollectionBasics:
    def test_insert_assigns_dense_ids(self):
        collection = api.collection(PEOPLE)
        assert collection.doc_ids() == [0, 1, 2]
        assert len(collection) == 3
        new_id = collection.insert({"name": {"first": "Li"}})
        assert new_id == 3

    def test_ids_never_reused_after_remove(self):
        collection = api.collection(PEOPLE)
        collection.remove(1)
        assert collection.doc_ids() == [0, 2]
        assert collection.insert({"x": 1}) == 3
        assert 1 not in collection
        with pytest.raises(StoreError):
            collection.get(1)

    def test_version_bumps_on_mutation_only(self):
        collection = api.collection(PEOPLE)
        v0 = collection.version
        collection.find({"age": {"$gt": 30}})
        assert collection.version == v0
        collection.insert({"a": 1})
        collection.remove(0)
        assert collection.version == v0 + 2

    def test_accepts_prebuilt_trees(self):
        tree = JSONTree.from_value({"k": "v"})
        collection = api.collection([tree])
        assert collection.get(0) is tree

    def test_shared_interning_across_batches(self):
        collection = api.collection([{"name": "a"}])
        before = collection.interned_strings()
        collection.insert({"name": "b"})
        # "name" was already interned; only "b" is new.
        assert collection.interned_strings() == before + 1
        key_a = next(iter(collection.get(0).object_keys(0)))
        key_b = next(iter(collection.get(1).object_keys(0)))
        assert key_a is key_b

    def test_unindexed_collection_still_answers(self):
        collection = api.collection(PEOPLE, indexed=False)
        assert collection.indexes is None
        assert collection.count({"name.last": "Doe"}) == 2
        explain = collection.explain({"name.last": "Doe"})
        assert not explain.used_indexes
        assert explain.scanned == 3

    def test_from_json_lines(self):
        text = '{"a": 1}\n\n{"a": 2}\n'
        collection = Collection.from_json_lines(text)
        assert len(collection) == 2
        assert collection.count({"a": 2}) == 1

    def test_from_json_lines_is_strict_by_default(self):
        from repro.errors import DuplicateKeyError

        with pytest.raises(DuplicateKeyError):
            Collection.from_json_lines('{"a": 1, "a": 2}')
        lenient = Collection.from_json_lines('{"a": 1, "a": 2}', strict=False)
        assert lenient.count({"a": 2}) == 1  # json.loads keeps the last


class TestIndexMaintenance:
    def test_insert_matches_full_rescan(self):
        collection = api.collection(PEOPLE)
        assert collection.indexes.snapshot() == rebuilt(collection).snapshot()

    def test_remove_unwinds_postings(self):
        collection = api.collection(PEOPLE)
        collection.remove(0)
        assert collection.indexes.snapshot() == rebuilt(collection).snapshot()

    def test_remove_everything_empties_every_table(self):
        collection = api.collection(PEOPLE)
        for doc_id in collection.doc_ids():
            collection.remove(doc_id)
        snapshot = collection.indexes.snapshot()
        assert all(not table for table in snapshot.values())

    def test_random_mutation_sequence_matches_rescan(self):
        rng = random.Random(20260727)
        collection = api.collection()
        pool = [
            {"user": {"id": i, "tag": f"t{i % 7}"},
             "scores": [i % 5, (i * 3) % 11],
             "meta": {"active": "yes" if i % 2 else "no"}}
            for i in range(40)
        ]
        for step, doc in enumerate(pool):
            collection.insert(doc)
            alive = collection.doc_ids()
            if alive and rng.random() < 0.4:
                collection.remove(rng.choice(alive))
            if step % 10 == 9:
                assert (
                    collection.indexes.snapshot()
                    == rebuilt(collection).snapshot()
                )
        assert collection.indexes.snapshot() == rebuilt(collection).snapshot()

    def test_entries_strip_array_positions(self):
        entries = index_entries(JSONTree.from_value({"a": {"b": [5, [6]]}}))
        assert ("a", "b") in entries.paths
        assert (("a", "b"), 5) in entries.leaves
        assert (("a", "b"), 6) in entries.leaves  # nested array, same path
        assert ("b", 5) in entries.tails
        assert entries.keys == frozenset({"a", "b"})

    def test_stats_counters(self):
        stats = api.collection(PEOPLE).index_stats()
        assert stats.documents == 3
        assert stats.keys >= 6  # name, first, last, age, hobbies, ...


class TestMutationFreshness:
    """Mutated collections never serve stale answers through cached plans."""

    FILTER = {"name.first": "Sue"}

    def test_results_track_inserts_and_removes(self):
        collection = api.collection(PEOPLE)
        assert collection.count(self.FILTER) == 1
        new_id = collection.insert(
            {"name": {"first": "Sue", "last": "Novak"}, "age": 50}
        )
        # Same filter text -> same cached plan; fresh candidates.
        assert collection.count(self.FILTER) == 2
        collection.remove(new_id)
        collection.remove(0)
        assert collection.count(self.FILTER) == 0

    def test_two_collections_share_plans_not_results(self):
        left = api.collection([{"k": "match"}])
        right = api.collection([{"k": "other"}])
        assert left.count({"k": "match"}) == 1
        assert right.count({"k": "match"}) == 0

    def test_select_tracks_mutations(self):
        collection = api.collection(PEOPLE)
        rows = dict(collection.select("$.hobbies[*]"))
        assert rows[0] == ["yoga", "chess"]
        collection.remove(0)
        rows = dict(collection.select("$.hobbies[*]"))
        assert 0 not in rows


class TestSchemaEnforcement:
    SCHEMA = {
        "type": "object",
        "required": ["name"],
        "properties": {"age": {"type": "number", "maximum": 120}},
    }

    def test_valid_documents_ingest(self):
        collection = api.collection(
            [{"name": "a", "age": 10}], schema=self.SCHEMA
        )
        assert len(collection) == 1
        assert collection.schema_enforced

    def test_reject_on_insert(self):
        collection = api.collection(schema=self.SCHEMA)
        with pytest.raises(DocumentRejectedError):
            collection.insert({"age": 10})
        assert len(collection) == 0

    def test_batch_rejection_is_atomic(self):
        collection = api.collection(schema=self.SCHEMA)
        with pytest.raises(DocumentRejectedError) as excinfo:
            collection.insert_many(
                [{"name": "ok"}, {"name": "bad", "age": 200}, {"name": "ok2"}]
            )
        assert excinfo.value.position == 1
        assert len(collection) == 0
        assert collection.indexes.snapshot() == rebuilt(collection).snapshot()
        assert collection.version == 0

    def test_prebuilt_validator(self):
        from repro.schema.parser import parse_schema
        from repro.validate import compile_schema_validator

        validator = compile_schema_validator(parse_schema(self.SCHEMA))
        collection = api.collection(validator=validator)
        collection.insert({"name": "x"})
        with pytest.raises(DocumentRejectedError):
            collection.insert({})

    def test_schema_and_validator_conflict(self):
        with pytest.raises(StoreError):
            api.collection(schema=self.SCHEMA, validator=object())
