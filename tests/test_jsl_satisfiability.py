"""The Proposition 7/10 satisfiability engine.

Soundness is certified internally (every SAT carries a verified
witness); these tests focus on decision correctness -- including a
brute-force differential over an exhaustively enumerated model space --
and on the paper's Examples 2 and 5.
"""

from __future__ import annotations

import random
from itertools import product

import pytest

from repro.jsl.bottom_up import satisfies_recursive
from repro.jsl.evaluator import satisfies
from repro.jsl.parser import parse_jsl, parse_jsl_formula
from repro.jsl.satisfiability import SolverConfig, jsl_satisfiable
from repro.model.tree import JSONTree
from repro.workloads import random_jsl_formula


class TestAtomicSatisfiability:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("true", True),
            ("false", False),
            ("string and number", False),
            ('string and pattern("(01)+")', True),
            ('pattern("a") and pattern("b")', False),
            ('string and not pattern(".*")', False),
            ("number and min(10) and max(14) and multipleof(4)", True),
            ("number and min(10) and max(12) and multipleof(4)", False),
            ("number and min(5) and max(5)", False),
            ("number and multipleof(0) and min(0)", False),
            ("number and multipleof(0)", True),
            ("object and string", False),
            ("not object and not array and not string and not number", False),
            ("value(7) and value(8)", False),
            ("value(7) and number", True),
            ("value(7) and string", False),
        ],
    )
    def test_cases(self, text, expected):
        result = jsl_satisfiable(parse_jsl_formula(text))
        assert result.satisfiable == expected
        if expected:
            assert result.witness is not None

    def test_unsat_simple_cases_are_complete(self):
        result = jsl_satisfiable(parse_jsl_formula("string and number"))
        assert not result.satisfiable and result.complete


class TestObjectSatisfiability:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("some(.name, string) and all(.name, number)", False),
            ("some(.name, string) and all(.*, string)", True),
            ("object and minch(2) and maxch(1)", False),
            ("object and minch(3)", True),
            ("some(.a, some(.b, some(.c, value(5))))", True),
            ("not some(.a, true) and minch(1) and object", True),
            ('value({"a": 1}) and some(.a, value(2))', False),
            ("some(.a, number) and not some(.a, multipleof(1))", False),
            # Paper's Prop 2 insight: a key's value cannot be two kinds.
            ("some(.a, array) and some(.a, object)", False),
            ("some(./x+/, number) and all(./x.*/, string)", False),
            ("some(./x+/, number) and all(./y.*/, string)", True),
        ],
    )
    def test_cases(self, text, expected):
        result = jsl_satisfiable(parse_jsl_formula(text))
        assert result.satisfiable == expected

    def test_witness_respects_boxes(self):
        result = jsl_satisfiable(
            parse_jsl_formula(
                "minch(2) and object and all(.*, number and min(9))"
            )
        )
        assert result.satisfiable
        value = result.witness.to_value()
        assert len(value) >= 2
        assert all(isinstance(v, int) and v > 9 for v in value.values())


class TestArraySatisfiability:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("array and minch(2) and unique and all([0:], number and max(2))", True),
            ("array and minch(3) and unique and all([0:], number and max(2))", False),
            ("array and not unique and minch(2) and all([0:], value(7))", True),
            ("array and not unique and maxch(1)", False),
            ("some([1:1], string) and all([0:], number)", False),
            ("all([0:2], string) and some([1:3], number)", True),
            (
                "unique and minch(4) and maxch(4) and all([0:], number and max(3))",
                False,
            ),
            ("some([0:0], string) and some([0:0], number)", False),
            ("array and maxch(0) and some([0:], true)", False),
        ],
    )
    def test_cases(self, text, expected):
        result = jsl_satisfiable(parse_jsl_formula(text))
        assert result.satisfiable == expected

    def test_unique_witness_has_distinct_children(self):
        result = jsl_satisfiable(
            parse_jsl_formula("unique and minch(3) and all([0:], number)")
        )
        assert result.satisfiable
        children = result.witness.to_value()
        assert len(children) >= 3
        assert len(set(map(str, children))) == len(children)


class TestRecursiveSatisfiability:
    def test_example2_even_paths(self):
        delta = parse_jsl(
            "def g1 := all(.*, $g2);"
            "def g2 := some(.*, true) and all(.*, $g1);"
            "object and $g1 and some(.*, true)"
        )
        result = jsl_satisfiable(delta)
        assert result.satisfiable
        # Witness tree must have all paths of even length >= 2.
        assert result.witness.height() % 2 == 0

    def test_example5_complete_binary_trees(self):
        delta = parse_jsl(
            "def g := not some([0:0], true) or "
            "(minch(2) and maxch(2) and not unique and all([0:1], $g));"
            "array and minch(2) and $g"
        )
        result = jsl_satisfiable(delta)
        assert result.satisfiable
        value = result.witness.to_value()
        assert isinstance(value, list) and len(value) == 2
        assert value[0] == value[1]  # the not-Unique constraint

    def test_unsatisfiable_recursion(self):
        delta = parse_jsl(
            "def g := some(.a, $g);"  # infinite descent required
            "$g"
        )
        result = jsl_satisfiable(delta)
        assert not result.satisfiable

    def test_witness_verified_against_expression(self):
        delta = parse_jsl(
            "def chain := value(\"end\") or some(.next, $chain);"
            "some(.next, $chain) and object"
        )
        result = jsl_satisfiable(delta)
        assert result.satisfiable
        assert satisfies_recursive(result.witness, delta)


def _enumerate_small_values():
    """Every JSON value over a tiny universe (for brute-force ground truth)."""
    atoms = [0, 1, "a"]
    level0 = list(atoms)
    level1 = list(level0)
    for size in range(3):
        for combo in product(level0, repeat=size):
            level1.append(list(combo))
    for keys in [(), ("a",), ("b",), ("a", "b")]:
        for values in product(level0, repeat=len(keys)):
            level1.append(dict(zip(keys, values)))
    return level1


_SMALL_SPACE = [_v for _v in _enumerate_small_values()]


class TestBruteForceDifferential:
    """If any small value satisfies phi, the solver must say SAT; if the
    solver says UNSAT *completely*, no small value may satisfy phi."""

    @pytest.mark.parametrize("seed", range(40))
    def test_against_enumeration(self, seed):
        rng = random.Random(seed)
        formula = random_jsl_formula(rng, depth=2)
        trees = [JSONTree.from_value(value) for value in _SMALL_SPACE]
        any_small_model = any(satisfies(tree, formula) for tree in trees)
        result = jsl_satisfiable(formula)
        if any_small_model:
            assert result.satisfiable, (
                f"solver missed a model for seed {seed}"
            )
        if not result.satisfiable and result.complete:
            assert not any_small_model, (
                f"solver claimed complete UNSAT despite a model, seed {seed}"
            )

    @pytest.mark.parametrize("seed", range(40, 60))
    def test_witnesses_satisfy(self, seed):
        rng = random.Random(seed)
        formula = random_jsl_formula(rng, depth=3)
        result = jsl_satisfiable(formula)
        if result.satisfiable:
            assert satisfies(result.witness, formula)


class TestSolverConfig:
    def test_tight_limits_flag_incompleteness(self):
        config = SolverConfig(max_rounds=1, goal_limit=3, dnf_limit=2)
        formula = parse_jsl_formula(
            "some(.a, some(.b, true)) and (string or number or object)"
        )
        result = jsl_satisfiable(formula, config)
        if not result.satisfiable:
            assert not result.complete

    def test_result_truthiness(self):
        assert jsl_satisfiable(parse_jsl_formula("true"))
        assert not jsl_satisfiable(parse_jsl_formula("false"))
