"""The ``repro.api`` facade: one ``connect`` / ``collection`` surface
over memory, durable, sharded and remote backends.

The satellite contract: every backend a collection handle can come
from answers the *same* operation battery with the *same* results --
the execution strategy (volatile dict, WAL-backed engine, hash
partitions, TCP round-trips) is invisible to the caller.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro import api
from repro.client import RemoteDatabase
from repro.errors import DocumentRejectedError, StoreError
from repro.server import ReproServer
from repro.store import Collection, Database, MemoryEngine, ShardedCollection
from repro.workloads import people_collection

PEOPLE = people_collection(40, seed=11)


class ServedDatabase:
    """A volatile database served over TCP on a background loop."""

    def __init__(self, documents) -> None:
        self.database = api.connect()
        self.database.collection(documents=documents)
        self.server = ReproServer(self.database)
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()
        started.wait()
        host, port = self.server.address
        self.url = f"tcp://{host}:{port}"

    def stop(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.aclose(), self._loop
        )
        future.result(timeout=10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


# ---------------------------------------------------------------------------
# connect(): one entry point, four backends.
# ---------------------------------------------------------------------------


class TestConnect:
    def test_no_path_is_a_volatile_database(self):
        with api.connect() as database:
            assert isinstance(database, Database)
            assert database.durable is False
            database.collection(documents=[{"a": 1}])
            assert database.collection().find({}) == [{"a": 1}]

    def test_path_is_a_durable_database(self, tmp_path):
        with api.connect(str(tmp_path)) as database:
            assert database.durable is True
            database.collection(documents=[{"a": 1}])
        with api.connect(str(tmp_path)) as database:
            assert database.collection().find({}) == [{"a": 1}]

    def test_shards_is_a_sharded_database(self, tmp_path):
        with api.connect(str(tmp_path), shards=3) as database:
            assert database.shards == 3 and database.durable is True
            collection = database.collection(documents=PEOPLE)
            assert isinstance(collection, ShardedCollection)
            assert sorted(
                collection.find({}), key=lambda d: d["name"]["first"]
            ) == sorted(PEOPLE, key=lambda d: d["name"]["first"])
        with api.connect(str(tmp_path), shards=3) as database:
            assert len(database.collection()) == len(PEOPLE)
            assert "main" in database.collection_names()

    def test_tcp_address_is_a_remote_database(self):
        served = ServedDatabase([{"a": 1}])
        try:
            with api.connect(served.url) as remote:
                assert isinstance(remote, RemoteDatabase)
                assert remote.collection().find({}) == [{"a": 1}]
        finally:
            served.stop()

    def test_tcp_rejects_local_only_options(self):
        with pytest.raises(StoreError):
            api.connect("tcp://localhost:1", shards=2)

    def test_sharded_rejects_fault_injection(self, tmp_path):
        from repro.store.faults import FaultyIO

        with pytest.raises(StoreError):
            api.connect(str(tmp_path), shards=2, io=FaultyIO())


# ---------------------------------------------------------------------------
# collection(): the volatile constructor.
# ---------------------------------------------------------------------------


class TestCollectionConstructor:
    def test_default_is_a_memory_engine_collection(self):
        collection = api.collection([{"a": 1}])
        assert isinstance(collection, Collection)
        assert isinstance(collection.engine, MemoryEngine)
        assert collection.find({}) == [{"a": 1}]

    def test_shards_builds_a_sharded_collection(self):
        collection = api.collection(PEOPLE, shards=3, parallel=False)
        assert isinstance(collection, ShardedCollection)
        assert collection.shard_count == 3
        assert len(collection) == len(PEOPLE)
        collection.close()

    def test_schema_is_enforced(self):
        collection = api.collection(
            schema={"type": "object", "required": ["name"]}
        )
        collection.insert({"name": "ok"})
        with pytest.raises(DocumentRejectedError):
            collection.insert({"nope": 1})


# ---------------------------------------------------------------------------
# The uniform Collection protocol, backend by backend.
# ---------------------------------------------------------------------------

PIPELINE = [
    {"$match": {"age": {"$gt": 30}}},
    {"$group": {"_id": "$address.city", "n": {"$sum": 1}}},
    {"$sort": {"n": -1, "_id": 1}},
]


@pytest.fixture(
    params=["memory", "durable", "sharded", "remote"], scope="module"
)
def backend(request, tmp_path_factory):
    """The same documents behind each backend's collection handle."""
    kind = request.param
    if kind == "memory":
        yield api.collection(PEOPLE)
    elif kind == "durable":
        with api.connect(
            str(tmp_path_factory.mktemp("durable"))
        ) as database:
            yield database.collection(documents=PEOPLE)
    elif kind == "sharded":
        collection = api.collection(PEOPLE, shards=3, parallel=False)
        yield collection
        collection.close()
    else:
        served = ServedDatabase(PEOPLE)
        remote = api.connect(served.url)
        yield remote.collection()
        remote.close()
        served.stop()


REFERENCE = api.collection(PEOPLE)


class TestUniformProtocol:
    def test_find_and_count(self, backend):
        for filter_doc in [{}, {"age": {"$gt": 40}}, {"address.city": "Talca"}]:
            assert sorted(
                map(repr, backend.find(filter_doc))
            ) == sorted(map(repr, REFERENCE.find(filter_doc)))
            assert backend.count(filter_doc) == REFERENCE.count(filter_doc)
        assert len(backend) == len(REFERENCE)

    def test_aggregate(self, backend):
        assert backend.aggregate(PIPELINE) == REFERENCE.aggregate(PIPELINE)

    def test_write_then_read_back(self, backend):
        doc = {"name": {"first": "Api", "last": "Probe"}, "age": 33}
        doc_id = backend.insert(doc)
        try:
            assert backend.count({"name.first": "Api"}) == 1
            backend.update_one(
                {"name.first": "Api"}, {"$inc": {"age": 1}}
            )
            [read_back] = backend.find({"name.first": "Api"})
            assert read_back["age"] == 34
        finally:
            backend.remove(doc_id)
        assert backend.count({"name.first": "Api"}) == 0
