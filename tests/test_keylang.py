"""Key languages: the boolean algebra over regular key sets."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.keylang import (
    KeyLang,
    any_key,
    disjoint_cells,
    regex_key,
    word_key,
)


class TestMembership:
    def test_word(self):
        lang = word_key("name")
        assert lang.matches("name")
        assert not lang.matches("names")
        assert lang.single_word == "name"

    def test_regex(self):
        lang = regex_key("a(b|c)a")
        assert lang.matches("aba") and lang.matches("aca")
        assert not lang.matches("ada")
        assert lang.single_word is None

    def test_any_and_none(self):
        assert any_key().matches("anything")
        assert any_key().matches("")
        assert not KeyLang.none().matches("")

    def test_complement(self):
        lang = word_key("x").complement()
        assert not lang.matches("x")
        assert lang.matches("y")
        # Double complement cancels syntactically.
        assert lang.complement() == word_key("x")

    def test_union_intersection(self):
        lang = KeyLang.union([word_key("a"), word_key("b")])
        assert lang.matches("a") and lang.matches("b") and not lang.matches("c")
        both = KeyLang.intersection([regex_key("a.*"), regex_key(".*z")])
        assert both.matches("az") and both.matches("abz")
        assert not both.matches("ab")

    def test_simplifications(self):
        assert KeyLang.union([]) == KeyLang.none()
        assert KeyLang.intersection([]) == KeyLang.any()
        assert KeyLang.union([word_key("a"), KeyLang.any()]) == KeyLang.any()
        assert (
            KeyLang.intersection([word_key("a"), KeyLang.none()])
            == KeyLang.none()
        )


class TestDecisionProcedures:
    def test_emptiness(self):
        assert KeyLang.intersection([word_key("a"), word_key("b")]).is_empty()
        assert not word_key("a").is_empty()
        assert KeyLang.none().is_empty()

    def test_witness_in_language(self):
        lang = KeyLang.union([word_key("name"), regex_key("x+")]).complement()
        witness = lang.witness()
        assert witness is not None
        assert lang.matches(witness)

    def test_count_words(self):
        assert word_key("a").count_words(5) == 1
        assert regex_key("a|b|c").count_words(5) == 3
        assert regex_key("a*").count_words(5) == 5

    def test_sample_words_are_members(self):
        lang = regex_key("[ab]{1,2}")
        words = lang.sample_words(4)
        assert len(set(words)) == 4
        assert all(lang.matches(word) for word in words)

    def test_pattern_text_round_trip(self):
        lang = KeyLang.union([word_key("a+b"), regex_key("c.")]).complement()
        text = lang.to_pattern_text()
        assert text is not None
        reparsed = regex_key(text)
        for word in ["a+b", "cc", "cd", "zz", "", "a"]:
            assert lang.matches(word) == reparsed.matches(word)

    def test_pattern_text_escapes_words(self):
        assert word_key("a.b").to_pattern_text() == "a\\.b"
        assert regex_key(word_key("a.b").to_pattern_text()).matches("a.b")


class TestDisjointCells:
    def test_cells_partition(self):
        langs = [word_key("name"), regex_key("a(b|c)a")]
        cells = disjoint_cells(langs)
        memberships = {members for members, _cell in cells}
        assert frozenset() in memberships          # keys outside both
        assert frozenset({0}) in memberships       # exactly "name"
        assert frozenset({1}) in memberships       # the regex
        # "name" does not match a(b|c)a, so no overlap cell.
        assert frozenset({0, 1}) not in memberships

    def test_cell_witnesses_respect_membership(self):
        langs = [regex_key("a.*"), regex_key(".*z")]
        for members, cell in disjoint_cells(langs):
            witness = cell.witness()
            assert witness is not None
            for index, lang in enumerate(langs):
                assert lang.matches(witness) == (index in members)


@given(st.sampled_from(["a", "ab", "a.*", "[ab]+", "x|y"]),
       st.text(alphabet="abxy.", max_size=5))
@settings(max_examples=80, deadline=None)
def test_complement_is_pointwise_negation(pattern, word):
    lang = regex_key(pattern)
    assert lang.complement().matches(word) == (not lang.matches(word))
