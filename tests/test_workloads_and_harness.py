"""Workload generators and the benchmark harness."""

from __future__ import annotations

import random

from repro.bench.harness import (
    SeriesPoint,
    format_table,
    loglog_slope,
    run_series,
)
from repro.model.equality import all_children_distinct
from repro.workloads import (
    TreeShape,
    balanced_tree,
    complete_binary_array_tree,
    counter_chain,
    deep_chain,
    duplicate_heavy_array,
    even_depth_tree,
    people_collection,
    random_tree,
    random_value,
    wide_array,
    wide_object,
)


class TestGenerators:
    def test_same_seed_same_tree(self):
        assert random_tree(7) == random_tree(7)

    def test_different_seeds_usually_differ(self):
        assert any(random_tree(i) != random_tree(i + 100) for i in range(5))

    def test_max_depth_respected(self):
        rng = random.Random(0)
        for _ in range(20):
            value = random_value(rng, TreeShape(max_depth=3))
            from repro.model.tree import JSONTree

            assert JSONTree.from_value(value).height() <= 3


class TestFamilies:
    def test_deep_chain(self):
        tree = deep_chain(10)
        assert tree.height() == 10
        assert len(tree) == 11

    def test_wide_object_and_array(self):
        assert wide_object(50).num_children(0) == 50
        assert wide_array(50).array_length(0) == 50

    def test_balanced_tree_size(self):
        tree = balanced_tree(branching=2, depth=3)
        assert len(tree) == 2**4 - 1

    def test_even_depth_tree_paths(self):
        tree = even_depth_tree(3)
        assert tree.height() == 3

    def test_complete_binary_array_tree_siblings_equal(self):
        tree = complete_binary_array_tree(3)
        assert not all_children_distinct(tree, tree.root)

    def test_duplicate_heavy_array_has_duplicates(self):
        tree = duplicate_heavy_array(30, distinct=3, seed=1)
        assert not all_children_distinct(tree, tree.root)

    def test_people_collection(self):
        people = people_collection(10, seed=2)
        assert len(people) == 10
        assert all("name" in person for person in people)
        assert people_collection(10, seed=2) == people

    def test_counter_chain_depth(self):
        tree = counter_chain(5)
        assert len(tree) > 5


class TestHarness:
    def test_loglog_slope_linear(self):
        points = [SeriesPoint(n, 1e-6 * n) for n in (100, 200, 400, 800)]
        assert abs(loglog_slope(points) - 1.0) < 0.01

    def test_loglog_slope_quadratic(self):
        points = [SeriesPoint(n, 1e-9 * n * n) for n in (100, 200, 400)]
        assert abs(loglog_slope(points) - 2.0) < 0.01

    def test_run_series_returns_points(self):
        points = run_series(
            [10, 20], make_input=lambda n: list(range(n)),
            run=lambda xs: sum(xs), repeat=1,
        )
        assert [point.x for point in points] == [10, 20]
        assert all(point.seconds >= 0 for point in points)

    def test_format_table_alignment(self):
        table = format_table("T", ["a", "bb"], [[1, 2], [33, 4]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5
