"""The collection planner: differential correctness and real pruning.

The acceptance bar for the store refactor: every front-end, routed
through IR -> planner -> indexes, returns results *identical* to the
pre-refactor per-tree engines over a differential corpus -- and the
candidate sets are always supersets of the true matches (pruning can
skip work, never answers).
"""

from __future__ import annotations

import json

import pytest

from repro.query import batch, compile_mongo_find, compile_query, planner
from repro.workloads import people_collection
from repro import api

# A corpus mixing realistic records with structural edge cases: missing
# keys, nested arrays, scalar and array roots, empty containers, values
# repeated at different paths.
TRICKY = [
    {"a": {"b": [5, {"c": 1}]}},
    {"a": {"b": 5}},
    {"a": [{"b": 5}], "c": 1},
    {"b": 5},
    {"a": {}},
    {},
    ["top", "level", {"a": {"b": [7]}}],
    "scalar-doc",
    7,
    {"deep": {"deep": {"deep": {"needle": "x"}}}},
    {"mixed": [0, "0", [0], {"zero": 0}]},
]

DOCS = people_collection(60, seed=3) + TRICKY

MONGO_FILTERS = [
    {},
    {"name.first": "Sue"},
    {"age": {"$gte": 30, "$lt": 60}},
    {"hobbies": "yoga"},  # scalar-vs-array containment
    {"age": {"$ne": 28}},
    {"name.first": {"$exists": False}},
    {"$or": [{"name.last": "Chen"}, {"age": {"$gt": 80}}]},
    {"hobbies": {"$elemMatch": {"$regex": "yo"}}},
    {"hobbies": {"$size": 2}},
    {"a.b": 5},
    {"a.b.c": 1},
    {"a.0.b": 5},
    {"age": {"$type": "number"}},
    {"name": {"first": "Sue", "last": "Doe"}},  # exact object equality
    {"mixed": 0},
]

JSONPATHS = [
    "$.name.first",
    "$..first",
    "$.hobbies[*]",
    '$.hobbies[?(@ == "yoga")]',
    "$.a.b[1].c",
    "$.*.first",
    "$.hobbies[0:2]",
    "$..b",
    "$[0,2]",
    "$..[1]",
    "$.deep.deep.deep.needle",
]

JNL_FORMULAS = [
    "has(.name.first)",
    'matches(.name.first, "Sue") or matches(.name.first, "Ana")',
    "not has(.name)",
    "has(.hobbies[0:5])",
    "has((.*|[*])* .c)",
    "matches(.a.b, 5)",
    "has(.age<test(min(50))>)",
]


@pytest.fixture(scope="module")
def collection():
    return api.collection(DOCS)


def all_queries():
    for filter_doc in MONGO_FILTERS:
        yield compile_mongo_find(filter_doc)
    for text in JSONPATHS:
        yield compile_query(text, "jsonpath")
    for text in JNL_FORMULAS:
        yield compile_query(text, "jnl")


class TestDifferential:
    """Planner-backed answers == pre-refactor per-tree evaluation."""

    def test_match_flags_identical(self, collection):
        for query in all_queries():
            reference = [query.matches(tree) for tree in collection.trees]
            assert planner.match_flags(collection, query) == reference, (
                query.dialect,
                query.source,
            )

    def test_selected_nodes_identical(self, collection):
        for query in all_queries():
            reference = [query.select(tree) for tree in collection.trees]
            rows = [nodes for _, nodes in planner.select_nodes(collection, query)]
            assert rows == reference, (query.dialect, query.source)

    def test_find_documents_identical(self, collection):
        for filter_doc in MONGO_FILTERS:
            query = compile_mongo_find(filter_doc)
            reference = [
                value
                for tree in collection.trees
                if (value := query.apply(tree)) is not None
            ]
            assert planner.find_documents(collection, query) == reference

    def test_projection_applies(self, collection):
        query = compile_mongo_find({"name.last": "Doe"}, {"name": 1})
        results = planner.find_documents(collection, query)
        assert results and all(set(doc) == {"name"} for doc in results)

    def test_indexed_and_unindexed_agree(self):
        indexed = api.collection(DOCS)
        unindexed = api.collection(DOCS, indexed=False)
        for query in all_queries():
            assert planner.match_ids(indexed, query) == planner.match_ids(
                unindexed, query
            ), (query.dialect, query.source)


class TestSoundness:
    """Candidates are always supersets of the true matches."""

    def test_match_candidates_cover_matches(self, collection):
        for query in all_queries():
            candidates = planner.candidate_ids(
                query.plan.match_predicate, collection.indexes
            )
            if candidates is None:
                continue
            matched = set(planner.match_ids(collection, query))
            assert matched <= candidates, (query.dialect, query.source)

    def test_node_candidates_cover_selections(self, collection):
        for query in all_queries():
            predicate = (
                query.plan.node_predicate
                if query.plan.mode == "filter"
                else query.plan.match_predicate
            )
            candidates = planner.candidate_ids(predicate, collection.indexes)
            if candidates is None:
                continue
            selecting = {
                doc_id
                for doc_id, tree in collection.documents()
                if query.select(tree)
            }
            assert selecting <= candidates, (query.dialect, query.source)


class TestPruningEffectiveness:
    def test_selective_equality_prunes(self, collection):
        explain = planner.explain(
            collection, compile_mongo_find({"deep.deep.deep.needle": "x"})
        )
        assert explain.used_indexes
        assert explain.scanned == 1
        assert explain.matched == 1
        assert explain.pruned == explain.total - 1

    def test_opaque_query_falls_back_to_full_scan(self, collection):
        query = compile_mongo_find({"a": {"$exists": False}})
        explain = planner.explain(collection, query)
        assert not explain.used_indexes
        assert explain.scanned == explain.total

    def test_explain_counts_are_consistent(self, collection):
        for query in all_queries():
            explain = planner.explain(collection, query)
            assert explain.total == len(collection)
            semantics = explain.semantics
            if semantics is not None and semantics.enforced and (
                semantics.verdict in ("empty", "all")
            ):
                # A discharged verdict answers without scanning: the
                # planner reports the honest zero-scan counters.
                assert explain.scanned == 0
                expected = 0 if semantics.verdict == "empty" else explain.total
                assert explain.matched == expected
            else:
                assert explain.matched <= explain.scanned <= explain.total
            assert explain.matched == len(planner.match_ids(collection, query))

    def test_explain_counts_are_consistent_without_semantics(self, collection):
        for query in all_queries():
            explain = planner.explain(collection, query, no_semantic=True)
            assert explain.semantics is None
            assert explain.total == len(collection)
            assert explain.matched <= explain.scanned <= explain.total


class TestBatchRouting:
    """The PR-1 batch APIs route collections through the planner."""

    def test_match_many_accepts_collections(self, collection):
        query = compile_mongo_find({"name.last": "Doe"})
        assert batch.match_many(query, collection) == batch.match_many(
            query, collection.trees
        )

    def test_filter_many_accepts_collections(self, collection):
        query = compile_mongo_find({"age": {"$gt": 40}})
        assert batch.filter_many(query, collection) == batch.filter_many(
            query, collection.trees
        )

    def test_select_and_evaluate_many_accept_collections(self, collection):
        query = compile_query("$.hobbies[*]", "jsonpath")
        assert batch.select_many(query, collection) == batch.select_many(
            query, collection.trees
        )
        assert batch.evaluate_many(query, collection) == batch.evaluate_many(
            query, collection.trees
        )

    def test_jsonpath_collection_helper(self, collection):
        from repro.jsonpath import jsonpath_collection

        rows = jsonpath_collection(collection, "$.name.first")
        reference = {
            doc_id: compile_query("$.name.first", "jsonpath").values(tree)
            for doc_id, tree in collection.documents()
        }
        assert dict(rows) == reference


class TestCollectionCLI:
    @pytest.fixture
    def corpus_file(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        lines = [
            {"name": {"first": "Sue"}, "age": 35},
            {"name": {"first": "Bob"}, "age": 28},
            {"name": {"first": "Ana"}, "age": 61, "tags": ["x"]},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines))
        return str(path)

    def test_query_collection_jsonpath(self, corpus_file, capsys):
        from repro.cli import main

        assert main(
            ["query", "--collection", corpus_file, "--jsonpath", "$.tags[*]"]
        ) == 0
        assert capsys.readouterr().out.splitlines() == ['2\t"x"']

    def test_query_collection_jnl_matches_docs(self, corpus_file, capsys):
        from repro.cli import main

        assert main(
            ["query", "--collection", corpus_file, "--jnl",
             "has(.age<test(min(30))>)"]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert [line.split("\t")[0] for line in out] == ["0", "2"]

    def test_query_collection_node_ids(self, corpus_file, capsys):
        from repro.cli import main

        assert main(
            ["query", "--collection", corpus_file, "--path", ".tags[0]",
             "--node-ids"]
        ) == 0
        doc_id, node = capsys.readouterr().out.split()
        assert doc_id == "2" and node.isdigit()

    def test_find_collection(self, corpus_file, capsys):
        from repro.cli import main

        assert main(
            ["find", "--collection", corpus_file,
             "--filter", '{"age": {"$gt": 30}}',
             "--project", '{"name": 1}']
        ) == 0
        rows = [
            line.split("\t") for line in capsys.readouterr().out.splitlines()
        ]
        assert [row[0] for row in rows] == ["0", "2"]
        assert json.loads(rows[0][1]) == {"name": {"first": "Sue"}}

    def test_find_collection_no_match_exit(self, corpus_file):
        from repro.cli import main

        assert main(
            ["find", "--collection", corpus_file,
             "--filter", '{"age": {"$gt": 99}}']
        ) == 1

    def test_both_inputs_rejected(self, corpus_file):
        from repro.cli import main

        assert main(
            ["query", corpus_file, "--collection", corpus_file, "--jnl", "true"]
        ) == 2
        assert main(["find", "--filter", "{}"]) == 2
