"""Event-driven tree construction."""

from __future__ import annotations

import pytest

from repro.errors import DuplicateKeyError, ModelError
from repro.model.builder import TreeBuilder


def test_build_object():
    builder = TreeBuilder()
    builder.start_object()
    builder.key("age")
    builder.number(32)
    builder.key("name")
    builder.string("Sue")
    builder.end_object()
    assert builder.result().to_value() == {"age": 32, "name": "Sue"}


def test_build_nested():
    builder = TreeBuilder()
    builder.start_array()
    builder.number(1)
    builder.start_object()
    builder.key("k")
    builder.start_array()
    builder.end_array()
    builder.end_object()
    builder.end_array()
    assert builder.result().to_value() == [1, {"k": []}]


def test_atomic_root():
    builder = TreeBuilder()
    builder.string("x")
    assert builder.result().to_value() == "x"


def test_duplicate_key_rejected():
    builder = TreeBuilder()
    builder.start_object()
    builder.key("a")
    builder.number(1)
    builder.key("a")
    with pytest.raises(DuplicateKeyError):
        builder.number(2)


def test_value_without_key_rejected():
    builder = TreeBuilder()
    builder.start_object()
    with pytest.raises(ModelError):
        builder.number(1)


def test_two_keys_in_a_row_rejected():
    builder = TreeBuilder()
    builder.start_object()
    builder.key("a")
    with pytest.raises(ModelError):
        builder.key("b")


def test_mismatched_end_rejected():
    builder = TreeBuilder()
    builder.start_object()
    with pytest.raises(ModelError):
        builder.end_array()


def test_dangling_key_rejected():
    builder = TreeBuilder()
    builder.start_object()
    builder.key("a")
    with pytest.raises(ModelError):
        builder.end_object()


def test_incomplete_result_rejected():
    builder = TreeBuilder()
    builder.start_object()
    with pytest.raises(ModelError):
        builder.result()


def test_events_after_completion_rejected():
    builder = TreeBuilder()
    builder.number(5)
    with pytest.raises(ModelError):
        builder.number(6)


def test_boolean_number_rejected():
    builder = TreeBuilder()
    with pytest.raises(ModelError):
        builder.number(True)  # type: ignore[arg-type]
