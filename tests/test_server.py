"""The serving tier: wire round-trips, typed error rehydration,
snapshot-isolated concurrent reads, group commit, and crash recovery.

``TestConcurrencyDifferential`` is scaled by ``REPRO_DIFF_SCALE`` (the
nightly CI job sweeps it at 20x) and pins the concurrency contract:
every read request is answered from one immutable
:class:`~repro.store.snapshot.CollectionSnapshot` -- a reader racing
the writer task never observes a torn write, and the final state is
identical to the same operations applied to a local collection.

``TestGroupCommitCrash`` drives ``engine.group()`` (the seam the
server's writer task batches through) into programmed crash points and
checks the recovery oracle: acknowledged writes survive, unacknowledged
group writes recover to a prefix, never anything else.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import threading
import time

import pytest

from repro import api
from repro.client import aconnect, connect
from repro.errors import (
    CollectionReadOnlyError,
    ParseError,
    ReproError,
    ServerError,
    StoreError,
    WireProtocolError,
    error_code,
    from_wire,
    to_wire,
)
from repro.server import PROTOCOL_VERSION, ReproServer
from repro.store import Collection, DurableEngine
from repro.store.faults import FaultPlan, FaultyIO, SimulatedCrash
from repro.workloads import people_collection

_SCALE = int(os.environ.get("REPRO_DIFF_SCALE", "1"))

PEOPLE = people_collection(60, seed=7)


class ServerThread:
    """A :class:`ReproServer` on its own event-loop thread.

    Sync-client tests need the server loop running concurrently with
    the test body; asyncio tests instead start the server inside their
    own ``asyncio.run`` coroutine.
    """

    def __init__(self, database) -> None:
        self.database = database
        self.server = ReproServer(database)
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()
        started.wait()
        self.address = self.server.address

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop.is_closed():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.aclose(), self._loop
        )
        future.result(timeout=10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


@pytest.fixture()
def served():
    database = api.connect()
    database.collection(documents=PEOPLE)
    with ServerThread(database) as handle:
        with connect(handle.address) as remote:
            yield remote, handle


def durable_collection(path, **kwargs):
    kwargs.setdefault("sync", "fsync")
    documents = kwargs.pop("documents", ())
    engine = DurableEngine(os.fspath(path), "main", **kwargs)
    return Collection(documents, engine=engine)


# ---------------------------------------------------------------------------
# Wire round-trips: remote results == local planner results.
# ---------------------------------------------------------------------------


class TestRoundTrip:
    def test_reads_match_the_local_planner(self, served):
        remote, _ = served
        local = api.collection(PEOPLE)
        collection = remote.collection()
        for filter_doc in [
            {},
            {"age": {"$gt": 40}},
            {"address.city": "Talca"},
            {"$or": [{"age": {"$lt": 25}}, {"age": {"$gt": 60}}]},
        ]:
            assert collection.find(filter_doc) == local.find(filter_doc)
            assert collection.count(filter_doc) == local.count(filter_doc)
        pipeline = [
            {"$match": {"age": {"$gt": 30}}},
            {"$group": {"_id": "$address.city", "n": {"$sum": 1}}},
            {"$sort": {"n": -1, "_id": 1}},
        ]
        assert collection.aggregate(pipeline) == local.aggregate(pipeline)
        assert len(collection) == len(local)

    def test_get_select_and_explain(self, served):
        remote, _ = served
        local = api.collection(PEOPLE)
        collection = remote.collection()
        assert collection.get(3) == local.get(3).to_value()
        assert collection.select("$.name") == list(local.select("$.name"))
        remote_report = collection.explain({"age": {"$gt": 50}})
        local_report = local.explain({"age": {"$gt": 50}})
        assert remote_report.kind == "find"
        assert remote_report.dialect == local_report.dialect
        assert remote_report.matched == local_report.matched
        assert remote_report.candidates == local_report.candidates
        remote_json = remote_report.to_json()
        local_json = local_report.to_json()
        # Proof latency is wall-clock; everything else matches exactly.
        remote_json["semantics"].pop("proof_ms")
        local_json["semantics"].pop("proof_ms")
        assert remote_json == local_json

    def test_writes_round_trip(self, served):
        remote, _ = served
        collection = remote.collection()
        before = len(collection)
        doc_id = collection.insert({"name": "Zoe", "age": 31})
        assert collection.get(doc_id) == {"name": "Zoe", "age": 31}
        ids = collection.insert_many([{"name": "Ana"}, {"name": "Bo"}])
        assert len(ids) == 2 and len(collection) == before + 3

        result = collection.update_one(
            {"name": "Zoe"}, {"$inc": {"age": 1}}
        )
        assert result == {"matched": 1, "modified": 1, "upserted_id": None}
        assert collection.get(doc_id)["age"] == 32

        result = collection.update_many(
            {"name": {"$in": ["Ana", "Bo"]}}, {"$set": {"seen": 1}}
        )
        assert result["matched"] == 2 and result["modified"] == 2

        result = collection.update_one(
            {"name": "Nix"}, {"$set": {"name": "Nix"}}, upsert=True
        )
        assert result["matched"] == 0
        assert collection.get(result["upserted_id"]) == {"name": "Nix"}

        assert collection.replace_one({"name": "Nix"}, {"name": "Pix"}) == {
            "matched": 1,
            "modified": 1,
            "upserted_id": None,
        }
        removed = collection.remove(doc_id)
        assert removed["name"] == "Zoe"
        assert collection.count({"name": "Zoe"}) == 0

    def test_validate_against_inline_schema(self, served):
        remote, _ = served
        collection = remote.collection()
        schema = {
            "type": "object",
            "required": ["name"],
            "properties": {"age": {"type": "number", "maximum": 120}},
        }
        assert collection.validate({"name": "Sue", "age": 9}, schema)
        assert not collection.validate({"age": 9}, schema)
        assert not collection.validate({"name": "Sue", "age": 200}, schema)

    def test_multiple_named_collections(self, served):
        remote, handle = served
        handle.database.collection("aux", documents=[{"k": 1}])
        assert set(remote.collection_names()) >= {"main", "aux"}
        assert remote.collection("aux").find({}) == [{"k": 1}]


# ---------------------------------------------------------------------------
# Typed errors: server serialises, client rehydrates the same class.
# ---------------------------------------------------------------------------


class TestErrorRehydration:
    def test_bad_filter_rehydrates_parse_error(self, served):
        remote, _ = served
        with pytest.raises(ParseError) as excinfo:
            remote.collection().find({"age": {"$bogus": 1}})
        assert "unsupported operator" in str(excinfo.value)
        assert error_code(excinfo.value) == "parse.error"

    def test_validate_without_schema_is_a_store_error(self, served):
        remote, _ = served
        with pytest.raises(StoreError):
            remote.collection().validate({"name": "Sue"})

    def test_unknown_op_is_a_wire_protocol_error(self, served):
        remote, _ = served
        with pytest.raises(WireProtocolError):
            remote.request("frobnicate")

    def test_malformed_line_is_answered_then_dropped(self, served):
        _, handle = served
        with socket.create_connection(handle.address) as raw:
            stream = raw.makefile("rwb")
            greeting = json.loads(stream.readline())
            assert greeting["protocol"] == PROTOCOL_VERSION
            stream.write(b"this is not json\n")
            stream.flush()
            response = json.loads(stream.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "wire.protocol"

    def test_schema_rejection_crosses_the_wire(self, tmp_path):
        database = api.connect(str(tmp_path))
        database.collection(
            schema={"type": "object", "required": ["name"]}
        )
        from repro.errors import DocumentRejectedError

        with ServerThread(database) as handle:
            with connect(handle.address) as remote:
                collection = remote.collection()
                collection.insert({"name": "ok"})
                with pytest.raises(DocumentRejectedError):
                    collection.insert({"nope": 1})
                # The failed write poisons nothing: the next one lands.
                collection.insert({"name": "still ok"})
                assert len(collection) == 2

    def test_wire_taxonomy_is_stable_and_total(self):
        """Every public exception class carries a distinct code, and
        ``from_wire(to_wire(exc))`` rehydrates the exact class."""
        classes = set()
        frontier = [ReproError]
        while frontier:
            cls = frontier.pop()
            classes.add(cls)
            frontier.extend(cls.__subclasses__())
        codes = {}
        for cls in classes:
            assert isinstance(cls.code, str) and cls.code, cls
            assert cls.code not in codes, (
                f"{cls.__name__} shares code {cls.code!r} "
                f"with {codes[cls.code].__name__}"
            )
            codes[cls.code] = cls
        # ParseError has the simple one-message constructor shape every
        # rehydratable class must support through its from_payload hook.
        wired = to_wire(ParseError("boom"))
        back = from_wire(wired)
        assert type(back) is ParseError and "boom" in str(back)

    def test_unregistered_code_degrades_to_server_error(self):
        exc = from_wire({"code": "no.such.code", "message": "hi"})
        assert isinstance(exc, ServerError)
        assert exc.remote_code == "no.such.code"

    def test_non_repro_exception_maps_to_server_error(self):
        wired = to_wire(RuntimeError("surprise"))
        assert wired["code"] == "server.error"
        assert isinstance(from_wire(wired), ServerError)


# ---------------------------------------------------------------------------
# Admin plane: ping, stats, shutdown.
# ---------------------------------------------------------------------------


class TestAdmin:
    def test_ping_stats_and_metrics(self, served):
        remote, _ = served
        assert remote.ping()
        remote.collection().find({"age": {"$gt": 40}})
        stats = remote.stats()
        health = stats["health"]["main"]
        assert health["ok"] and not health["degraded"]
        assert stats["collections"]["main"]["documents"] == len(PEOPLE)
        assert stats["metrics"]["reads"] >= 1
        assert stats["durable"] is False

    def test_shutdown_op_stops_the_server(self):
        database = api.connect()
        database.collection(documents=[{"a": 1}])
        handle = ServerThread(database)
        try:
            with connect(handle.address) as remote:
                remote.shutdown()
            deadline = 50
            while deadline:
                try:
                    socket.create_connection(handle.address, timeout=0.2).close()
                except OSError:
                    break
                deadline -= 1
                time.sleep(0.05)
            with pytest.raises(OSError):
                socket.create_connection(handle.address, timeout=0.2).close()
        finally:
            handle._loop.call_soon_threadsafe(handle._loop.stop)
            handle._thread.join(timeout=10)
            handle._loop.close()


# ---------------------------------------------------------------------------
# Degraded mode over the wire: reads keep working, writes are typed
# rejections.
# ---------------------------------------------------------------------------


class TestDegradedMode:
    def test_faulted_engine_serves_reads_rejects_writes(self, tmp_path):
        io = FaultyIO()
        database = api.connect(str(tmp_path), sync="flush", io=io)
        database.collection(documents=[{"n": 1}, {"n": 2}])
        with ServerThread(database) as handle:
            with connect(handle.address) as remote:
                collection = remote.collection()
                io.arm(FaultPlan.fail("write"))
                with pytest.raises(StoreError) as excinfo:
                    collection.insert({"n": 3})
                assert error_code(excinfo.value) in (
                    "storage.io",
                    "store.read-only",
                )
                # Engine is read-only now: the typed rejection is stable.
                with pytest.raises(CollectionReadOnlyError):
                    collection.insert({"n": 4})
                # Reads still answer, from the unpoisoned snapshot.
                assert collection.count({}) == 2
                assert collection.find({"n": 2}) == [{"n": 2}]
                health = remote.stats()["health"]["main"]
                assert health["degraded"] and not health["ok"]


# ---------------------------------------------------------------------------
# Concurrency differential: N async readers racing the writer task.
# ---------------------------------------------------------------------------

ACCOUNTS = 8
BALANCE = 100


class TestConcurrencyDifferential:
    def test_readers_never_observe_torn_writes(self):
        """Readers race a stream of multi-document write requests.

        Invariants checked on *every* read response:

        * ``update_many`` bumps every account in one request -- all
          account balances are equal in any snapshot (a torn write
          would expose a half-applied batch);
        * pairs are inserted two-at-a-time in one request -- the pair
          count is even in any snapshot;
        * the aggregate sum equals ``accounts * balance`` for the
          balance implied by any single account (snapshot-internal
          consistency between find and aggregate is per-request).
        """
        rounds = 20 * _SCALE
        readers = 4
        violations: list[str] = []

        async def scenario() -> tuple[int, int]:
            database = api.connect()
            database.collection(
                documents=[
                    {"kind": "acct", "acct": i, "balance": BALANCE}
                    for i in range(ACCOUNTS)
                ]
            )
            server = ReproServer(database)
            await server.start()
            try:
                done = asyncio.Event()

                async def writer() -> tuple[int, int]:
                    remote = await aconnect(server.address)
                    try:
                        collection = remote.collection()
                        pairs = 0
                        for round_no in range(rounds):
                            await collection.update_many(
                                {"kind": "acct"},
                                {"$inc": {"balance": 1}},
                            )
                            if round_no % 3 == 0:
                                await collection.insert_many(
                                    [
                                        {"kind": "pair", "round": round_no},
                                        {"kind": "pair", "round": round_no},
                                    ]
                                )
                                pairs += 2
                        return rounds, pairs
                    finally:
                        await remote.aclose()
                        done.set()

                async def reader(index: int) -> None:
                    remote = await aconnect(server.address)
                    try:
                        collection = remote.collection()
                        while not done.is_set():
                            balances = [
                                doc["balance"]
                                for doc in await collection.find(
                                    {"kind": "acct"}
                                )
                            ]
                            if len(set(balances)) != 1:
                                violations.append(
                                    f"reader {index}: torn balances {balances}"
                                )
                            pair_count = await collection.count(
                                {"kind": "pair"}
                            )
                            if pair_count % 2:
                                violations.append(
                                    f"reader {index}: odd pair count "
                                    f"{pair_count}"
                                )
                            rows = await collection.aggregate(
                                [
                                    {"$match": {"kind": "acct"}},
                                    {
                                        "$group": {
                                            "_id": None,
                                            "total": {"$sum": "$balance"},
                                        }
                                    },
                                ]
                            )
                            total = rows[0]["total"]
                            if total % ACCOUNTS:
                                violations.append(
                                    f"reader {index}: torn sum {total}"
                                )
                    finally:
                        await remote.aclose()

                results = await asyncio.gather(
                    writer(), *[reader(i) for i in range(readers)]
                )
                increments, pairs = results[0]

                # Final-state differential against the local planner.
                remote = await aconnect(server.address)
                try:
                    collection = remote.collection()
                    final = await collection.find({})
                    metrics = (await remote.stats())["metrics"]
                finally:
                    await remote.aclose()
                local = api.collection(
                    [
                        {"kind": "acct", "acct": i, "balance": BALANCE}
                        for i in range(ACCOUNTS)
                    ]
                )
                for round_no in range(increments):
                    local.update_many(
                        {"kind": "acct"}, {"$inc": {"balance": 1}}
                    )
                    if round_no % 3 == 0:
                        local.insert_many(
                            [
                                {"kind": "pair", "round": round_no},
                                {"kind": "pair", "round": round_no},
                            ]
                        )
                assert final == local.find({})
                assert metrics["writes"] == increments + (pairs // 2)
                return increments, pairs
            finally:
                await server.aclose()

        increments, pairs = asyncio.run(scenario())
        assert increments == rounds and pairs == 2 * ((rounds + 2) // 3)
        assert violations == []

    def test_snapshot_pins_track_generations(self):
        """The server re-pins a snapshot only when the generation moved:
        reads between writes reuse one immutable view."""

        async def scenario() -> None:
            database = api.connect()
            database.collection(documents=[{"n": 1}])
            server = ReproServer(database)
            await server.start()
            try:
                remote = await aconnect(server.address)
                try:
                    collection = remote.collection()
                    for _ in range(5):
                        await collection.find({})
                    pins_idle = server.metrics.snapshot_pins
                    await collection.insert({"n": 2})
                    await collection.find({})
                    assert server.metrics.snapshot_pins == pins_idle + 1
                finally:
                    await remote.aclose()
            finally:
                await server.aclose()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Group commit: one sync per batch, crash points recover the
# acknowledged prefix.
# ---------------------------------------------------------------------------


class TestGroupCommitCrash:
    def test_group_defers_to_one_sync(self, tmp_path):
        collection = durable_collection(tmp_path)
        wal = collection.engine.wal
        before = wal.sync_count
        with collection.engine.group():
            for n in range(10):
                collection.insert({"n": n})
        assert wal.sync_count == before + 1
        collection.close()

    def test_crash_at_group_sync_loses_only_unacknowledged(self, tmp_path):
        io = FaultyIO()
        collection = durable_collection(tmp_path, io=io)
        collection.insert({"n": 0})  # acknowledged before the group
        io.arm(FaultPlan.crash("fsync"))
        with pytest.raises(SimulatedCrash):
            with collection.engine.group():
                collection.insert({"n": 1})
                collection.insert({"n": 2})
        # Nothing in the group was acknowledged.  The reopened state is
        # the acknowledged prefix plus possibly fully-landed frames of
        # the in-flight group -- in order, never a gap.
        reopened = durable_collection(tmp_path)
        recovered = [doc.to_value()["n"] for _, doc in reopened.documents()]
        assert recovered[0] == 0
        assert recovered == list(range(len(recovered)))
        reopened.close()

    @pytest.mark.parametrize("crash_op", ["write", "fsync"])
    def test_crash_sweep_inside_group_commit(self, tmp_path, crash_op):
        """Crash at each I/O op index inside a group-committed batch;
        the recovery oracle holds at every point."""
        for nth in range(1, 4 * _SCALE):
            directory = tmp_path / f"{crash_op}-{nth}"
            io = FaultyIO()
            collection = durable_collection(directory, io=io)
            collection.insert({"n": 0})
            io.arm(FaultPlan.crash(crash_op, nth=nth))
            try:
                with collection.engine.group():
                    for n in range(1, 5):
                        collection.insert({"n": n})
                acknowledged = 5  # group exited cleanly: all acked
            except SimulatedCrash:
                acknowledged = 1  # only the pre-group insert was acked
            reopened = durable_collection(directory)
            recovered = [
                doc.to_value()["n"] for _, doc in reopened.documents()
            ]
            assert len(recovered) >= acknowledged, (
                f"lost acknowledged write at {crash_op} #{nth}: {recovered}"
            )
            assert recovered == list(range(len(recovered))), (
                f"non-prefix recovery at {crash_op} #{nth}: {recovered}"
            )
            reopened.close()

    def test_server_batches_concurrent_writes(self, tmp_path):
        """Concurrent writer clients against a durable server share WAL
        syncs: strictly fewer syncs than write requests."""

        async def scenario() -> tuple[int, int, int]:
            database = api.connect(str(tmp_path), sync="fsync")
            collection = database.collection(documents=[{"n": 0}])
            wal = collection.engine.wal
            server = ReproServer(database)
            await server.start()
            try:
                before = wal.sync_count

                async def one_writer(index: int) -> None:
                    remote = await aconnect(server.address)
                    try:
                        handle = remote.collection()
                        for step in range(6):
                            await handle.insert(
                                {"writer": index, "step": step}
                            )
                    finally:
                        await remote.aclose()

                await asyncio.gather(*[one_writer(i) for i in range(8)])
                return (
                    wal.sync_count - before,
                    server.metrics.batched_writes,
                    server.metrics.group_commits,
                )
            finally:
                await server.aclose()

        syncs, batched, groups = asyncio.run(scenario())
        assert batched == 48
        assert groups >= 1
        assert syncs < batched, (
            f"no batching: {syncs} syncs for {batched} writes"
        )
        # Durability still holds for every acknowledged write.
        with api.connect(str(tmp_path)) as database:
            assert len(database.collection()) == 49
