"""The JSONPath front-end (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.jnl import ast
from repro.jsonpath import jsonpath_nodes, jsonpath_query, parse_jsonpath


class TestBasicSteps:
    def test_root_only(self, store_doc):
        assert jsonpath_query(store_doc, "$") == [store_doc.to_value()]

    def test_member(self, store_doc):
        assert jsonpath_query(store_doc, "$.store.bicycle.price") == [19]

    def test_bracket_member(self, store_doc):
        assert jsonpath_query(store_doc, "$['store']['bicycle']") == [
            {"price": 19}
        ]

    def test_index(self, store_doc):
        assert jsonpath_query(store_doc, "$.store.book[0].title") == ["Sayings"]

    def test_negative_index(self, store_doc):
        assert jsonpath_query(store_doc, "$.store.book[-1].title") == ["Moby"]

    def test_wildcard_object(self, store_doc):
        results = jsonpath_query(store_doc, "$.store.*")
        assert len(results) == 2

    def test_wildcard_array(self, store_doc):
        assert jsonpath_query(store_doc, "$.store.book[*].price") == [8, 12, 9]


class TestSlicesAndUnions:
    def test_slice_end_exclusive(self, store_doc):
        assert jsonpath_query(store_doc, "$.store.book[1:3].title") == [
            "Sword", "Moby",
        ]

    def test_open_slices(self, store_doc):
        assert jsonpath_query(store_doc, "$.store.book[1:].title") == [
            "Sword", "Moby",
        ]
        assert jsonpath_query(store_doc, "$.store.book[:2].title") == [
            "Sayings", "Sword",
        ]

    def test_empty_slice(self, store_doc):
        assert jsonpath_query(store_doc, "$.store.book[2:2]") == []

    def test_index_union(self, store_doc):
        assert jsonpath_query(store_doc, "$.store.book[0,2].title") == [
            "Sayings", "Moby",
        ]


class TestRecursiveDescent:
    def test_descendant_key(self, store_doc):
        assert jsonpath_query(store_doc, "$..price") == [8, 12, 9, 19]

    def test_descendant_wildcard_counts_all(self, store_doc):
        # ..* selects every node except the root.
        results = jsonpath_nodes(store_doc, "$..*")
        assert len(results) == len(store_doc) - 1

    def test_descendant_index(self, store_doc):
        assert jsonpath_query(store_doc, "$..[0].title") == ["Sayings"]


class TestFilters:
    def test_numeric_comparison(self, store_doc):
        assert jsonpath_query(
            store_doc, "$.store.book[?(@.price < 10)].title"
        ) == ["Sayings", "Moby"]
        assert jsonpath_query(
            store_doc, "$.store.book[?(@.price >= 9)].title"
        ) == ["Sword", "Moby"]

    def test_equality_filter(self, store_doc):
        assert jsonpath_query(
            store_doc, '$.store.book[?(@.author == "E")].title'
        ) == ["Sword"]
        assert jsonpath_query(
            store_doc, '$.store.book[?(@.author != "E")].title'
        ) == ["Sayings", "Moby"]

    def test_existence_filter(self, store_doc):
        # Children of any store member that carry a "title".
        titles = jsonpath_query(store_doc, "$.store.*[?(@.title)]")
        assert [book["title"] for book in titles] == ["Sayings", "Sword", "Moby"]
        assert len(jsonpath_query(store_doc, "$..[?(@.price > 0)]")) == 4

    def test_document_order(self, store_doc):
        # Results come back in preorder document order.
        prices = jsonpath_query(store_doc, "$..price")
        assert prices == [8, 12, 9, 19]


class TestCompilation:
    def test_descent_compiles_to_star(self):
        path = parse_jsonpath("$..x")
        assert ast.is_recursive(path)

    def test_plain_path_is_deterministic(self):
        path = parse_jsonpath("$.a.b[3]")
        assert ast.is_deterministic(path)

    @pytest.mark.parametrize(
        "bad",
        ["", "store.book", "$[", "$.a[?(@..x > 1)]", "$.a[?(@.x >)]", "$.a[1:x]"],
    )
    def test_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_jsonpath(bad)
