"""The MongoDB find-filter front-end (Section 4.1, Example 1)."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.jnl import ast
from repro.mongo import Collection, compile_filter
from repro.workloads import people_collection
from repro import api


@pytest.fixture
def people() -> Collection:
    return api.collection(
        [
            {"name": "Sue", "age": 35, "tags": ["admin", "dev"],
             "address": {"city": "Santiago"}},
            {"name": "Bob", "age": 28, "tags": ["dev"]},
            {"name": "Eve", "age": 41, "tags": []},
        ]
    )


def names(results):
    return [doc["name"] for doc in results]


class TestExample1:
    def test_paper_query(self, people):
        # db.collection.find({name: {$eq: "Sue"}}, {})
        assert names(people.find({"name": {"$eq": "Sue"}})) == ["Sue"]

    def test_filter_compiles_to_deterministic_jnl(self):
        formula = compile_filter({"name": {"$eq": "Sue"}})
        assert isinstance(formula, ast.Unary)


class TestOperators:
    def test_implicit_equality(self, people):
        assert names(people.find({"name": "Bob"})) == ["Bob"]

    def test_comparisons(self, people):
        assert names(people.find({"age": {"$gt": 35}})) == ["Eve"]
        assert names(people.find({"age": {"$gte": 35}})) == ["Sue", "Eve"]
        assert names(people.find({"age": {"$lt": 35}})) == ["Bob"]
        assert names(people.find({"age": {"$lte": 35}})) == ["Sue", "Bob"]

    def test_range_conjunction(self, people):
        assert names(people.find({"age": {"$gte": 30, "$lt": 40}})) == ["Sue"]

    def test_ne(self, people):
        assert names(people.find({"name": {"$ne": "Sue"}})) == ["Bob", "Eve"]

    def test_in_nin(self, people):
        assert names(people.find({"age": {"$in": [28, 41]}})) == ["Bob", "Eve"]
        assert names(people.find({"age": {"$nin": [28, 41]}})) == ["Sue"]

    def test_exists(self, people):
        assert names(people.find({"address": {"$exists": True}})) == ["Sue"]
        assert names(people.find({"address": {"$exists": False}})) == [
            "Bob", "Eve",
        ]

    def test_type(self, people):
        assert names(people.find({"tags": {"$type": "array"}})) == [
            "Sue", "Bob", "Eve",
        ]
        assert names(people.find({"age": {"$type": "string"}})) == []

    def test_size(self, people):
        assert names(people.find({"tags": {"$size": 0}})) == ["Eve"]
        assert names(people.find({"tags": {"$size": 2}})) == ["Sue"]

    def test_regex(self, people):
        assert names(people.find({"name": {"$regex": "^S"}})) == ["Sue"]
        assert names(people.find({"name": {"$regex": "e$"}})) == ["Sue", "Eve"]
        assert names(people.find({"name": {"$regex": "o"}})) == ["Bob"]

    def test_array_containment(self, people):
        # MongoDB: equality on an array field matches elements too.
        assert names(people.find({"tags": "dev"})) == ["Sue", "Bob"]
        assert names(people.find({"tags": ["dev"]})) == ["Bob"]  # exact

    def test_elem_match(self, people):
        assert names(
            people.find({"tags": {"$elemMatch": {"$eq": "admin"}}})
        ) == ["Sue"]

    def test_dotted_paths(self, people):
        assert names(people.find({"address.city": "Santiago"})) == ["Sue"]
        assert names(people.find({"tags.0": "dev"})) == ["Bob"]

    def test_boolean_operators(self, people):
        assert names(
            people.find({"$or": [{"name": "Bob"}, {"age": {"$gt": 40}}]})
        ) == ["Bob", "Eve"]
        assert names(
            people.find({"$and": [{"age": {"$gt": 30}}, {"age": {"$lt": 40}}]})
        ) == ["Sue"]
        assert names(
            people.find({"$nor": [{"name": "Sue"}, {"name": "Bob"}]})
        ) == ["Eve"]
        assert names(people.find({"age": {"$not": {"$gt": 30}}})) == ["Bob"]

    def test_count(self, people):
        assert people.count({"age": {"$gt": 0}}) == 3

    @pytest.mark.parametrize(
        "bad",
        [
            {"$unknown": []},
            {"a": {"$gt": "x"}},
            {"a": {"$in": 5}},
            {"a": {"$type": "wibble"}},
            {"": 1},
        ],
    )
    def test_malformed_filters(self, bad):
        with pytest.raises(ParseError):
            compile_filter(bad)


class TestLargerCollection:
    def test_generated_people(self):
        collection = api.collection(people_collection(200, seed=5))
        adults = collection.find({"age": {"$gte": 18}})
        assert len(adults) == 200
        some_city = collection.find({"address.city": "Santiago"})
        for doc in some_city:
            assert doc["address"]["city"] == "Santiago"
        with_hobby = collection.find(
            {"hobbies": {"$elemMatch": {"$eq": "yoga"}}}
        )
        for doc in with_hobby:
            assert "yoga" in doc["hobbies"]
