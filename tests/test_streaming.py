"""Streaming tokenizer and deterministic-JSL validator (Section 6)."""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DuplicateKeyError,
    StreamingError,
    UnsupportedFragmentError,
)
from repro.jsl.bottom_up import satisfies_recursive
from repro.jsl.evaluator import satisfies
from repro.jsl.parser import parse_jsl, parse_jsl_formula
from repro.model.builder import TreeBuilder
from repro.model.tree import JSONTree
from repro.streaming import StreamingJSLValidator, tokenize
from repro.workloads import TreeShape, random_value

json_values = st.recursive(
    st.one_of(st.integers(min_value=0, max_value=40), st.text(max_size=4)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=3), children, max_size=4),
    ),
    max_leaves=12,
)


def _rebuild(text: str) -> JSONTree:
    builder = TreeBuilder()
    for event in tokenize(text):
        tag = event[0]
        if tag in ("start_object", "end_object", "start_array", "end_array"):
            getattr(builder, tag)()
        else:
            getattr(builder, tag)(event[1])
    return builder.result()


class TestTokenizer:
    @given(json_values)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_through_builder(self, value):
        tree = _rebuild(json.dumps(value))
        assert tree.to_value() == value

    def test_duplicate_keys_detected(self):
        with pytest.raises(DuplicateKeyError):
            list(tokenize('{"a": 1, "a": 2}'))

    def test_duplicate_detection_can_be_disabled(self):
        events = list(tokenize('{"a": 1, "a": 2}', check_duplicates=False))
        assert events[0] == ("start_object",)

    @pytest.mark.parametrize(
        "text",
        ['{"a" 1}', "[1,", "[1 2]", '{"a":}', "", "{,}", "[]]", "12.5",
         "-3", "true", "nul", '"unclosed'],
    )
    def test_malformed(self, text):
        with pytest.raises((StreamingError, DuplicateKeyError)):
            list(tokenize(text))

    def test_whitespace_tolerated(self):
        events = list(tokenize('  { "a" :\n[ 1 , 2 ] }  '))
        assert events[-1] == ("end_object",)


class TestValidatorFragment:
    def test_rejects_nondeterministic_modalities(self):
        with pytest.raises(UnsupportedFragmentError):
            StreamingJSLValidator(parse_jsl_formula("some(./a.*/, true)"))
        with pytest.raises(UnsupportedFragmentError):
            StreamingJSLValidator(parse_jsl_formula("some([0:2], true)"))

    def test_rejects_tree_equality(self):
        with pytest.raises(UnsupportedFragmentError):
            StreamingJSLValidator(parse_jsl_formula("unique"))
        with pytest.raises(UnsupportedFragmentError):
            StreamingJSLValidator(parse_jsl_formula("value(5)"))

    def test_accepts_deterministic_fragment(self):
        StreamingJSLValidator(
            parse_jsl_formula("some(.a, all([2:2], number)) and minch(1)")
        )


DETERMINISTIC_FORMULAS = [
    "some(.name, string)",
    "all(.age, number and min(17))",
    # min/max atoms evaluated at non-number nodes (strings, containers)
    # must answer False, never crash on the int() conversion.
    "some(.age, min(4))",
    "some(.age, max(40))",
    "some(.a, some(.b, number)) or minch(3)",
    'some(.name, pattern("[A-Z].*")) and not some(.x, true)',
    "some([0:0], string) and all([1:1], number)",
    "maxch(2) or some(.tags, minch(1))",
    "not (some(.a, true) and some(.b, true))",
    "number and multipleof(3) or string",
]


class TestValidatorAgreement:
    @pytest.mark.parametrize("formula_text", DETERMINISTIC_FORMULAS)
    def test_matches_in_memory_on_random_docs(self, formula_text):
        formula = parse_jsl_formula(formula_text)
        validator = StreamingJSLValidator(formula)
        for seed in range(25):
            rng = random.Random(seed)
            value = random_value(rng, TreeShape(max_depth=3, max_children=4))
            streamed = validator.validate_text(json.dumps(value))
            direct = satisfies(JSONTree.from_value(value), formula)
            assert streamed == direct, (formula_text, value)

    def test_recursive_deterministic_streaming(self):
        delta = parse_jsl(
            "def even := not some(.a, true) or some(.a, $odd);"
            "def odd := some(.a, $even) and some(.a, true);"
            "$even"
        )
        validator = StreamingJSLValidator(delta)
        for depth in range(8):
            value: object = 0
            for _ in range(depth):
                value = {"a": value}
            streamed = validator.validate_text(json.dumps(value))
            direct = satisfies_recursive(JSONTree.from_value(value), delta)
            assert streamed == direct == (depth % 2 == 0)

    def test_memory_is_depth_bounded(self):
        # A huge *flat* document keeps the frame stack at depth <= 2.
        formula = parse_jsl_formula("all([5:5], number) and minch(100)")
        validator = StreamingJSLValidator(formula)
        text = json.dumps(list(range(50_000)))
        assert validator.validate_text(text)
        assert validator.max_depth <= 2

    def test_counts_children(self):
        formula = parse_jsl_formula("minch(3) and maxch(3)")
        validator = StreamingJSLValidator(formula)
        assert validator.validate_text('{"a":1,"b":2,"c":3}')
        assert not validator.validate_text('{"a":1}')
        assert validator.validate_text("[1,2,3]")
