"""JNL satisfiability (Propositions 2 and 5)."""

from __future__ import annotations

import random

import pytest

from repro.errors import UnsupportedFragmentError
from repro.jnl.efficient import evaluate_unary
from repro.jnl.parser import parse_jnl
from repro.jnl.satisfiability import jnl_satisfiable
from repro.workloads import random_jnl_unary


class TestDeterministicCases:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("true", True),
            ("false", False),
            ("has(.a.b.c)", True),
            ("has(.a) and not has(.a)", False),
            ("matches(.k, [1, 2])", True),
            ("matches(.k, 1) and matches(.k, 2)", False),
            # The paper's key-typing example: X_a<[X_0]> ^ X_a<[X_b]>
            # forces the value under "a" to be array AND object.
            ("has(.a<has([0])>) and has(.a<has(.b)>)", False),
            ("has(.a<has([0])>) or has(.a<has(.b)>)", True),
            ("has(.a[0]) and has(.a.b)", False),
            ("has(.a[0]) and has(.a[1])", True),
            ("has(.a.b) and has(.a.c)", True),
        ],
    )
    def test_cases(self, text, expected):
        result = jnl_satisfiable(parse_jnl(text))
        assert result.satisfiable == expected

    def test_witness_models_formula(self):
        formula = parse_jnl("has(.a[2]) and matches(.b, {\"x\": 1})")
        result = jnl_satisfiable(formula)
        assert result.satisfiable
        assert result.witness.root in evaluate_unary(result.witness, formula)


class TestNonDeterministicAndRecursive:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("has(./ab*/<test(number)>)", True),
            ("has(./a/<test(number)>) and has(.a<test(string)>)", False),
            ("has([0:3]<test(string)>)", True),
            ("has((.a)*.stop)", True),
            ("has((.a)* <matches(eps, \"end\")>)", True),
        ],
    )
    def test_cases(self, text, expected):
        result = jnl_satisfiable(parse_jnl(text))
        assert result.satisfiable == expected
        if result.satisfiable:
            assert result.witness.root in evaluate_unary(
                result.witness, parse_jnl(text)
            )

    @pytest.mark.parametrize("seed", range(20))
    def test_random_sat_formulas_produce_valid_witnesses(self, seed):
        rng = random.Random(seed)
        formula = random_jnl_unary(rng, depth=2, allow_eqpath=False)
        result = jnl_satisfiable(formula)
        if result.satisfiable:
            assert result.witness.root in evaluate_unary(
                result.witness, formula
            )


class TestRefusals:
    def test_eqpath_deterministic_refused(self):
        with pytest.raises(UnsupportedFragmentError):
            jnl_satisfiable(parse_jnl("eq(.a, .b)"))

    def test_eqpath_recursive_refused_as_undecidable(self):
        with pytest.raises(UnsupportedFragmentError) as info:
            jnl_satisfiable(parse_jnl("has((.a)*<eq(.x, .y)>)"))
        assert "undecidable" in str(info.value)
