"""Shared fixtures: the paper's running examples as documents."""

from __future__ import annotations

import pytest

from repro.model.tree import JSONTree


@pytest.fixture
def figure1_doc() -> JSONTree:
    """The document of Figure 1."""
    return JSONTree.from_json(
        '{"name": {"first": "John", "last": "Doe"}, '
        '"age": 32, "hobbies": ["fishing", "yoga"]}'
    )


@pytest.fixture
def section3_doc() -> JSONTree:
    """The five-value document of Section 3.1."""
    return JSONTree.from_value(
        {"name": {"first": "John", "last": "Doe"}, "age": 32}
    )


@pytest.fixture
def store_doc() -> JSONTree:
    """A JSONPath-style bookstore document."""
    return JSONTree.from_value(
        {
            "store": {
                "book": [
                    {"title": "Sayings", "price": 8, "author": "N"},
                    {"title": "Sword", "price": 12, "author": "E"},
                    {"title": "Moby", "price": 9, "author": "H"},
                ],
                "bicycle": {"price": 19},
            }
        }
    )
