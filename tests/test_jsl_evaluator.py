"""JSL evaluation (Proposition 6) and node-test semantics."""

from __future__ import annotations

import pytest

from repro.errors import TranslationError
from repro.jsl import ast
from repro.jsl.evaluator import JSLEvaluator, nodes_satisfying, satisfies
from repro.jsl.parser import parse_jsl_formula
from repro.logic import nodetests as nt
from repro.model.tree import JSONTree


class TestNodeTests:
    @pytest.mark.parametrize(
        "value,text,expected",
        [
            ({}, "object", True),
            ([], "array", True),
            ("x", "string", True),
            (3, "number", True),
            (3, "string", False),
            (8, "min(7)", True),
            (7, "min(7)", False),        # Min is strict
            (6, "max(7)", True),
            (7, "max(7)", False),        # Max is strict
            (8, "multipleof(4)", True),
            (9, "multipleof(4)", False),
            (0, "multipleof(0)", True),
            (3, "multipleof(0)", False),
            ("ab", 'pattern("a.")', True),
            ("abc", 'pattern("a.")', False),
            (5, 'pattern("5")', False),  # Pattern only holds on strings
            ({"a": 1, "b": 2}, "minch(2)", True),
            ({"a": 1}, "minch(2)", False),
            ([1, 2, 3], "maxch(2)", False),
            ("leaf", "maxch(0)", True),
            ("leaf", "minch(1)", False),
            ([1, 2], "unique", True),
            ([1, 1], "unique", False),
            ({"a": 1}, "unique", False),  # Unique requires an array
            ([1, "1"], "unique", True),
            (32, "value(32)", True),
            ({"k": [1]}, 'value({"k": [1]})', True),
            ({"k": [1]}, 'value({"k": [2]})', False),
        ],
    )
    def test_atomic(self, value, text, expected):
        tree = JSONTree.from_value(value)
        assert satisfies(tree, parse_jsl_formula(text)) == expected


class TestModalities:
    def test_dia_key_word(self, figure1_doc):
        assert satisfies(figure1_doc, parse_jsl_formula("some(.age, number)"))
        assert not satisfies(
            figure1_doc, parse_jsl_formula("some(.age, string)")
        )

    def test_dia_key_regex(self, figure1_doc):
        assert satisfies(
            figure1_doc, parse_jsl_formula("some(./h.*/, array)")
        )

    def test_box_key_vacuous_on_leaves(self):
        tree = JSONTree.from_value(5)
        assert satisfies(tree, parse_jsl_formula("all(.*, false)"))

    def test_box_key_vacuous_on_arrays(self):
        tree = JSONTree.from_value([1, 2])
        # Key boxes quantify over object edges only.
        assert satisfies(tree, parse_jsl_formula("all(.*, false)"))

    def test_dia_idx_window(self):
        tree = JSONTree.from_value(["a", "b", 3])
        assert satisfies(tree, parse_jsl_formula("some([2:5], number)"))
        assert not satisfies(tree, parse_jsl_formula("some([0:1], number)"))

    def test_box_idx_unbounded(self):
        tree = JSONTree.from_value(["a", "b"])
        assert satisfies(tree, parse_jsl_formula("all([0:], string)"))
        assert not satisfies(
            JSONTree.from_value(["a", 1]), parse_jsl_formula("all([0:], string)")
        )

    def test_box_idx_finite_window(self):
        tree = JSONTree.from_value([1, "x", "y", 2])
        assert satisfies(tree, parse_jsl_formula("all([1:2], string)"))
        assert not satisfies(tree, parse_jsl_formula("all([1:3], string)"))

    def test_nodes_satisfying_returns_all(self, figure1_doc):
        numbers = nodes_satisfying(figure1_doc, ast.TestAtom(nt.IsNumber()))
        assert len(numbers) == 1

    def test_refs_rejected_in_plain_evaluator(self):
        tree = JSONTree.from_value({})
        with pytest.raises(TranslationError):
            JSLEvaluator(tree).satisfies(ast.Ref("gamma"))


class TestDeterministicFragment:
    def test_word_modalities_are_deterministic(self):
        assert ast.is_deterministic(parse_jsl_formula("some(.a, all(.b, true))"))
        assert ast.is_deterministic(parse_jsl_formula("some([2:2], true)"))
        assert not ast.is_deterministic(parse_jsl_formula("some(./a.*/, true)"))
        assert not ast.is_deterministic(parse_jsl_formula("some([0:2], true)"))
        assert not ast.is_deterministic(parse_jsl_formula("some(.*, true)"))

    def test_modal_depth(self):
        assert ast.modal_depth(parse_jsl_formula("some(.a, some(.b, true))")) == 2
        assert ast.modal_depth(parse_jsl_formula("number")) == 0

    def test_uses_unique(self):
        assert ast.uses_unique(parse_jsl_formula("some(.a, unique)"))
        assert not ast.uses_unique(parse_jsl_formula("some(.a, number)"))


class TestExactUniqueFlag:
    def test_both_modes_agree(self):
        from repro.workloads import duplicate_heavy_array

        tree = duplicate_heavy_array(40, 7, seed=3)
        formula = parse_jsl_formula("unique")
        assert satisfies(tree, formula, exact_unique=True) == satisfies(
            tree, formula, exact_unique=False
        )
