"""The schema-aware semantic optimizer and the unified Explain API.

Covers the verdict ladder (unsat => empty, implied => all, partial =>
residual, unknown => none), the widen-only structural summary for
schemaless collections, process-wide verdict caching keyed by schema
fingerprint, the ``optimize=`` modes and the ``hint={"no_semantic":
True}`` escape hatch, the versioned Explain ``semantics`` section, and
the deprecated explain shims.

``TestRandomisedDifferential`` pins the optimizer's first law -- it is
invisible in results -- by racing ``optimize="on"`` against ``"off"``
over randomised schemas x queries on every backend (memory, durable,
sharded, remote).  Scaled by ``REPRO_DIFF_SCALE`` (the nightly CI job
sweeps it at 20x) alongside adversarial cases: a prover starved to a
zero budget, a summary that widens between proof and execution, and
``not``-heavy schemas.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import threading

import pytest

from repro import api
from repro.explain import (
    AggregateExplain,
    Explain,
    PlanExplain,
    SemanticsExplain,
    UpdateExplain,
)
from repro.errors import StoreError
from repro.query import compile_mongo_find, optimizer, planner

_SCALE = int(os.environ.get("REPRO_DIFF_SCALE", "1"))

AGE_SCHEMA = {
    "type": "object",
    "required": ["age", "name"],
    "properties": {
        "age": {"type": "number", "minimum": 0, "maximum": 120},
        "name": {"type": "string"},
    },
}


def age_docs(count: int = 20) -> list[dict]:
    return [{"age": i % 100, "name": f"p{i}"} for i in range(count)]


def decision_for(collection, filter_doc, **kwargs):
    return optimizer.semantic_plan(
        collection, compile_mongo_find(filter_doc), **kwargs
    )


# ---------------------------------------------------------------------------
# The verdict ladder.
# ---------------------------------------------------------------------------


class TestVerdicts:
    @pytest.fixture()
    def people(self):
        return api.collection(age_docs(), schema=AGE_SCHEMA)

    def test_unsat_filter_proves_empty(self, people):
        decision = decision_for(people, {"age": {"$gt": 500}})
        assert decision.verdict.kind == "empty"
        assert decision.effective == "empty"
        assert people.find({"age": {"$gt": 500}}) == []
        assert people.count({"age": {"$gt": 500}}) == 0

    def test_implied_filter_proves_all(self, people):
        decision = decision_for(people, {"age": {"$gte": 0}})
        assert decision.verdict.kind == "all"
        assert decision.verdict.discharged
        assert people.count({"age": {"$gte": 0}}) == len(people)
        assert people.find({"age": {"$gte": 0}}) == people.find(
            {"age": {"$gte": 0}}, hint={"no_semantic": True}
        )

    def test_partially_implied_filter_leaves_a_residual(self, people):
        filter_doc = {"age": {"$gte": 0}, "name": "p3"}
        decision = decision_for(people, filter_doc)
        assert decision.verdict.kind == "residual"
        assert decision.verdict.discharged  # the age conjunct
        assert decision.verdict.residual  # the name conjunct survives
        assert people.find(filter_doc) == people.find(
            filter_doc, hint={"no_semantic": True}
        )

    def test_unknown_filter_proves_nothing(self, people):
        decision = decision_for(people, {"hobby": "chess"})
        assert decision.verdict.kind == "none"
        assert not decision.verdict.discharged

    def test_extended_collections_opt_out(self):
        extended = api.collection([{"age": 1}], extended=True)
        assert extended.semantic_context is None
        assert decision_for(extended, {"age": {"$gt": 500}}) is None

    def test_update_targets_use_the_same_verdicts(self, people):
        result = people.update_many({"age": {"$gt": 500}}, {"$inc": {"age": 1}})
        assert result.matched_count == 0
        report = people.explain_update({"age": {"$gt": 500}}, {"$inc": {"age": 1}})
        assert report.semantics is not None
        assert report.semantics.verdict == "empty"
        assert report.matched == 0 and report.scanned == 0

    def test_aggregate_lead_match_uses_the_same_verdicts(self, people):
        assert people.aggregate(
            [{"$match": {"age": {"$gt": 500}}}, {"$count": "n"}]
        ) == []
        report = people.explain_aggregate(
            [{"$match": {"age": {"$gte": 0}}}, {"$count": "n"}]
        )
        assert report.semantics is not None
        assert report.semantics.verdict == "all"
        assert report.scanned == 0 and report.matched == len(people)


# ---------------------------------------------------------------------------
# The widen-only structural summary (schemaless collections).
# ---------------------------------------------------------------------------


class TestStructuralSummary:
    def test_out_of_envelope_query_proves_empty(self):
        plain = api.collection([{"n": i} for i in range(30)])
        decision = decision_for(plain, {"n": {"$gt": 1000}})
        assert decision is not None
        assert decision.verdict.kind == "empty"
        assert decision.verdict.source == "summary"
        assert plain.count({"n": {"$gt": 1000}}) == 0

    def test_summary_widens_on_insert(self):
        plain = api.collection([{"n": i} for i in range(10)])
        assert plain.count({"n": {"$gt": 100}}) == 0  # proved empty
        plain.insert({"n": 150})
        # The widened summary invalidates the cached verdict: the new
        # document is visible immediately.
        assert plain.count({"n": {"$gt": 100}}) == 1

    def test_summary_widens_on_update(self):
        plain = api.collection([{"n": i} for i in range(10)])
        assert plain.count({"n": {"$gt": 100}}) == 0
        plain.update_many({"n": 3}, {"$set": {"n": 300}})
        assert plain.count({"n": {"$gt": 100}}) == 1

    def test_snapshot_pins_the_premise(self):
        plain = api.collection([{"n": i} for i in range(10)])
        view = plain.snapshot_view()
        plain.insert({"n": 150})
        # The snapshot's pinned universe still has n <= 9; its captured
        # premise stays sound (widening only weakens it).
        assert view.count({"n": {"$gt": 100}}) == 0
        assert plain.count({"n": {"$gt": 100}}) == 1

    def test_every_document_satisfies_the_inferred_formula(self):
        from repro.jsl.entailment import SolverConfig, conjoin, unsat

        docs = [
            {"a": 1, "b": "x"},
            {"a": 2, "c": [1, 2, 3]},
            {"a": 3, "b": "y", "d": {"e": 9}},
        ]
        plain = api.collection(docs)
        context = plain.semantic_context
        assert context is not None
        # The summary's formula admits a model at all (it is not a
        # vacuous bottom) ...
        proved, complete = unsat(context.formula, SolverConfig())
        assert not proved
        # ... and refuting it against itself is absurd: conjoining two
        # copies (hygienically renamed) stays satisfiable.
        doubled = conjoin(context.formula, context.formula)
        proved, complete = unsat(doubled, SolverConfig())
        assert not proved

    def test_mixed_kinds_stay_sound(self):
        docs = [{"v": 1}, {"v": "text"}, {"v": [1]}, {"v": {"k": 2}}]
        plain = api.collection(docs)
        for filter_doc in ({"v": 1}, {"v": "text"}, {"v": {"$gt": 0}}):
            assert plain.find(filter_doc) == plain.find(
                filter_doc, hint={"no_semantic": True}
            ), filter_doc


# ---------------------------------------------------------------------------
# Modes, hints, and the api knobs.
# ---------------------------------------------------------------------------


class TestModesAndHints:
    def test_optimize_off_disables_the_premise(self):
        off = api.collection(age_docs(), schema=AGE_SCHEMA, optimize="off")
        assert off.semantic_context is None
        report = off.explain({"age": {"$gt": 500}})
        assert report.semantics is None
        assert report.scanned > 0 or report.candidates == 0

    def test_proof_only_reports_without_enforcing(self):
        proof = api.collection(
            age_docs(), schema=AGE_SCHEMA, optimize="proof-only"
        )
        report = proof.explain({"age": {"$gte": 0}})
        assert report.semantics is not None
        assert report.semantics.mode == "proof-only"
        assert report.semantics.verdict == "all"
        assert not report.semantics.enforced
        # Enforcement is off: the classic path scanned every survivor.
        assert report.scanned == len(proof)

    def test_hint_escape_hatch(self):
        people = api.collection(age_docs(), schema=AGE_SCHEMA)
        report = people.explain(
            {"age": {"$gt": 500}}, hint={"no_semantic": True}
        )
        assert report.semantics is None
        assert people.count({"age": {"$gt": 500}}, hint={"no_semantic": True}) == 0

    def test_connect_validates_the_mode(self):
        with pytest.raises(StoreError):
            api.connect(optimize="sometimes")
        with pytest.raises(StoreError):
            api.collection([], optimize="sometimes")

    def test_database_threads_the_mode_through(self, tmp_path):
        with api.connect(tmp_path / "db", optimize="proof-only") as db:
            handle = db.collection(documents=age_docs(), schema=AGE_SCHEMA)
            assert handle.optimize == "proof-only"
        with api.connect(tmp_path / "db2", optimize="on") as db:
            handle = db.collection(optimize="off", documents=[{"n": 1}])
            assert handle.optimize == "off"

    def test_remote_rejects_proof_only(self):
        from repro.client import RemoteCollection

        with pytest.raises(StoreError):
            RemoteCollection(None, "main", optimize="proof-only")


# ---------------------------------------------------------------------------
# Verdict caching.
# ---------------------------------------------------------------------------


class TestVerdictCache:
    def test_collections_sharing_a_schema_share_verdicts(self):
        schema = {
            "type": "object",
            "required": ["cache_probe"],
            "properties": {
                "cache_probe": {"type": "number", "minimum": 0, "maximum": 77}
            },
        }
        first = api.collection([{"cache_probe": 1}], schema=schema)
        second = api.collection([{"cache_probe": 2}], schema=schema)
        filter_doc = {"cache_probe": {"$gt": 9999}}
        one = decision_for(first, filter_doc)
        two = decision_for(second, filter_doc)
        assert one.verdict.kind == "empty"
        assert two.verdict.kind == "empty"
        assert two.cached  # same canonical schema text, same query
        assert two.verdict == one.verdict

    def test_budget_is_part_of_the_cache_key(self):
        people = api.collection(age_docs(), schema=AGE_SCHEMA)
        filter_doc = {"age": {"$lt": -3}, "name": "only-in-this-test"}
        eager = decision_for(people, filter_doc)
        assert eager.verdict.kind == "empty"
        starved = decision_for(
            people, filter_doc, config=optimizer.OptimizerConfig(budget_ms=0.0)
        )
        # A different budget must not reuse the eager verdict blindly;
        # whatever it proves must still be sound.
        assert starved.verdict.kind in ("empty", "none")


# ---------------------------------------------------------------------------
# The Explain semantics section (pinned scenarios).
# ---------------------------------------------------------------------------


class TestExplainSemantics:
    def test_unsat_find_reports_the_discharged_predicate(self):
        people = api.collection(age_docs(), schema=AGE_SCHEMA)
        report = people.explain({"age": {"$gt": 500}})
        assert isinstance(report, Explain)
        assert report.format == "repro-explain" and report.version == 1
        semantics = report.semantics
        assert semantics is not None
        assert semantics.verdict == "empty"
        assert semantics.source == "schema"
        assert semantics.enforced
        assert list(semantics.discharged) == ["[X_age.<Min(500)>]"]
        assert report.scanned == 0 and report.matched == 0

    def test_implied_find_reports_every_discharged_conjunct(self):
        schema = {
            "type": "object",
            "required": ["age", "score"],
            "properties": {
                "age": {"type": "number", "minimum": 0, "maximum": 120},
                "score": {"type": "number", "minimum": 0, "maximum": 10},
            },
        }
        docs = [{"age": i, "score": i % 10} for i in range(15)]
        people = api.collection(docs, schema=schema)
        report = people.explain(
            {"age": {"$gte": 0}, "score": {"$lte": 1000}}
        )
        semantics = report.semantics
        assert semantics is not None and semantics.verdict == "all"
        # Both conjuncts were discharged: each field shows up in the
        # proved formula text.
        discharged_text = " ".join(semantics.discharged)
        assert "X_age" in discharged_text and "X_score" in discharged_text
        assert report.matched == len(people) and report.scanned == 0

    def test_residual_reports_both_halves(self):
        people = api.collection(age_docs(), schema=AGE_SCHEMA)
        report = people.explain({"age": {"$gte": 0}, "name": "p3"})
        semantics = report.semantics
        assert semantics is not None and semantics.verdict == "residual"
        assert semantics.discharged and semantics.residual
        assert report.matched == 1

    def test_semantics_survive_the_wire_format(self):
        people = api.collection(age_docs(), schema=AGE_SCHEMA)
        report = people.explain({"age": {"$gt": 500}})
        rehydrated = Explain.from_json(
            json.loads(json.dumps(report.to_json()))
        )
        assert rehydrated == report
        assert isinstance(rehydrated.semantics, SemanticsExplain)

    def test_verify_counter_counts_only_real_verification(self):
        people = api.collection(age_docs(), schema=AGE_SCHEMA)
        optimizer.reset_verify_calls()
        people.find({"age": {"$gte": 0}})  # proved "all": verify-free
        assert optimizer.verify_calls() == 0
        people.find({"age": {"$gte": 0}}, hint={"no_semantic": True})
        assert optimizer.verify_calls() == len(people)


# ---------------------------------------------------------------------------
# Deprecated shims.
# ---------------------------------------------------------------------------


class TestExplainShims:
    def test_old_constructors_warn(self):
        with pytest.warns(DeprecationWarning):
            PlanExplain("mongo-find", "{}", 4, None, 4, 2)
        with pytest.warns(DeprecationWarning):
            AggregateExplain("mongo-find", "{}", 4, None, 4, 2, 1, ())
        with pytest.warns(DeprecationWarning):
            UpdateExplain("{}", "{}", 4, None, 4, 2, 2, 0, 0, 0, {})

    def test_shim_field_parity(self):
        with pytest.warns(DeprecationWarning):
            shim = PlanExplain("mongo-find", "{}", 4, 2, 2, 1)
        base = Explain(
            kind="find",
            dialect="mongo-find",
            source="{}",
            total=4,
            candidates=2,
            scanned=2,
            matched=1,
        )
        assert isinstance(shim, Explain)
        assert shim.to_json() == base.to_json()
        assert shim.pruned == base.pruned

    def test_shim_round_trips_through_the_wire_format(self):
        with pytest.warns(DeprecationWarning):
            shim = UpdateExplain("{}", "$inc", 4, 1, 1, 1, 1, 2, 2, 0, {"eq": 2})
        rehydrated = Explain.from_json(shim.to_json())
        assert rehydrated.to_json() == shim.to_json()
        assert rehydrated.kind == "update"
        assert shim.filter_source == shim.source

    def test_legacy_import_paths_resolve_to_the_shims(self):
        from repro.mongo import AggregateExplain as FromMongo
        from repro.mongo import UpdateExplain as UpdateFromMongo
        from repro.query import PlanExplain as FromQuery

        assert FromQuery is PlanExplain
        assert FromMongo is AggregateExplain
        assert UpdateFromMongo is UpdateExplain


# ---------------------------------------------------------------------------
# Entailment hygiene.
# ---------------------------------------------------------------------------


class TestEntailmentHygiene:
    def test_conjoin_renames_clashing_definitions(self):
        from repro.jsl.entailment import SolverConfig, conjoin, unsat

        # Two summaries use the same generated definition names (n0,
        # n1, ...); a naive conjunction would capture references across
        # operands.  The hygienic one renames them apart per operand.
        low = api.collection([{"n": i} for i in range(5)])
        high = api.collection([{"n": 1000 + i} for i in range(5)])
        left = low.semantic_context.formula
        right = high.semantic_context.formula
        merged = conjoin(left, right)
        names = [name for name, _body in merged.definitions]
        expected = len(left.definitions) + len(right.definitions)
        assert len(names) == len(set(names)) == expected
        assert {name.split("_", 2)[1] for name in names} == {"e0", "e1"}
        # Box-style summaries admit the empty object, so the merged
        # formula stays satisfiable -- and the solver completes on it.
        proved, complete = unsat(merged, SolverConfig())
        assert not proved and complete

    def test_entailment_of_top_completes(self):
        from repro.jsl import ast
        from repro.jsl.entailment import SolverConfig, entails

        plain = api.collection([{"n": i} for i in range(5)])
        formula = plain.semantic_context.formula
        proved, complete = entails(formula, ast.Top(), SolverConfig())
        assert proved and complete


# ---------------------------------------------------------------------------
# Randomised on-vs-off differential, all four backends (nightly: 20x).
# ---------------------------------------------------------------------------


def _random_schema(rng: random.Random) -> tuple[dict, list[dict]]:
    """A random numeric-envelope schema and documents satisfying it."""
    fields = {}
    for name in ("a", "b", "c")[: rng.randint(1, 3)]:
        low = rng.randint(0, 50)
        high = low + rng.randint(1, 100)
        fields[name] = (low, high)
    schema = {
        "type": "object",
        "required": sorted(fields),
        "properties": {
            name: {"type": "number", "minimum": low, "maximum": high}
            for name, (low, high) in fields.items()
        },
    }
    docs = [
        {name: rng.randint(low, high) for name, (low, high) in fields.items()}
        for _ in range(rng.randint(5, 40))
    ]
    return schema, docs


def _random_filter(rng: random.Random, schema: dict) -> dict:
    """A random comparison filter: some unsat, some implied, some real."""
    filter_doc: dict = {}
    for name, spec in schema["properties"].items():
        if rng.random() < 0.4:
            continue
        low, high = spec["minimum"], spec["maximum"]
        op = rng.choice(["$gt", "$gte", "$lt", "$lte", "$eq"])
        pivot = rng.choice(
            [
                rng.randint(low, high),  # selective
                high + rng.randint(1, 50),  # often unsat / implied
                low - rng.randint(1, 50),  # often unsat / implied
            ]
        )
        filter_doc[name] = {op: pivot}
    return filter_doc


class TestRandomisedDifferential:
    def test_memory_on_equals_off(self):
        rng = random.Random(20170508)
        for _ in range(10 * _SCALE):
            schema, docs = _random_schema(rng)
            on = api.collection(docs, schema=schema)
            off = api.collection(docs, schema=schema, optimize="off")
            for _ in range(8):
                filter_doc = _random_filter(rng, schema)
                assert on.find(filter_doc) == off.find(filter_doc), filter_doc
                assert on.count(filter_doc) == off.count(filter_doc)
                pipeline = [{"$match": filter_doc}, {"$count": "n"}]
                assert on.aggregate(pipeline) == off.aggregate(pipeline)

    def test_memory_summary_on_equals_off(self):
        rng = random.Random(1138)
        for _ in range(10 * _SCALE):
            schema, docs = _random_schema(rng)
            on = api.collection(docs)  # schemaless: summary premise
            off = api.collection(docs, optimize="off")
            for _ in range(8):
                filter_doc = _random_filter(rng, schema)
                assert on.find(filter_doc) == off.find(filter_doc), filter_doc
                assert on.count(filter_doc) == off.count(filter_doc)

    def test_durable_on_equals_off(self, tmp_path):
        rng = random.Random(4)
        schema, docs = _random_schema(rng)
        with api.connect(tmp_path / "db") as db:
            handle = db.collection(documents=docs, schema=schema)
            for _ in range(10 * _SCALE):
                filter_doc = _random_filter(rng, schema)
                assert handle.find(filter_doc) == handle.find(
                    filter_doc, hint={"no_semantic": True}
                ), filter_doc

    def test_sharded_on_equals_off(self):
        rng = random.Random(99)
        schema, docs = _random_schema(rng)
        reference = api.collection(docs, schema=schema, optimize="off")
        with api.collection(
            docs, schema=schema, shards=3, parallel=False
        ) as fleet:
            for _ in range(10 * _SCALE):
                filter_doc = _random_filter(rng, schema)
                assert fleet.find(filter_doc) == reference.find(
                    filter_doc
                ), filter_doc
                assert fleet.count(filter_doc) == reference.count(filter_doc)
                pipeline = [{"$match": filter_doc}, {"$count": "n"}]
                assert fleet.aggregate(pipeline) == reference.aggregate(
                    pipeline
                )

    def test_remote_on_equals_off(self):
        from repro.server import ReproServer

        rng = random.Random(7)
        schema, docs = _random_schema(rng)
        database = api.connect()
        database.collection(documents=docs, schema=schema)
        local = api.collection(docs, schema=schema, optimize="off")

        server = ReproServer(database)
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(server.start())
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        started.wait()
        try:
            from repro.client import connect

            with connect(server.address) as on_client, connect(
                server.address, optimize="off"
            ) as off_client:
                on = on_client.collection()
                off = off_client.collection()
                for _ in range(10 * _SCALE):
                    filter_doc = _random_filter(rng, schema)
                    expected = local.find(filter_doc)
                    assert on.find(filter_doc) == expected, filter_doc
                    assert off.find(filter_doc) == expected, filter_doc
                    assert on.count(filter_doc) == len(expected)
                report = on.explain({"a": {"$gt": 10_000}})
                assert report.semantics is not None
                assert report.semantics.verdict == "empty"
        finally:
            future = asyncio.run_coroutine_threadsafe(server.aclose(), loop)
            future.result(timeout=10)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            loop.close()

    # -- adversarial cases -------------------------------------------------

    def test_starved_prover_falls_through_soundly(self):
        rng = random.Random(55)
        schema, docs = _random_schema(rng)
        people = api.collection(docs, schema=schema)
        starved = optimizer.OptimizerConfig(budget_ms=0.0)
        for _ in range(10 * _SCALE):
            filter_doc = _random_filter(rng, schema)
            query = compile_mongo_find(filter_doc)
            decision = optimizer.semantic_plan(people, query, config=starved)
            if decision is not None and decision.verdict.timed_out:
                assert decision.verdict.kind == "none"
            # Whatever the verdict, execution stays exact.
            assert planner.find_documents(people, query) == people.find(
                filter_doc, hint={"no_semantic": True}
            ), filter_doc

    def test_summary_widened_between_proof_and_execution(self):
        rng = random.Random(666)
        for _ in range(5 * _SCALE):
            plain = api.collection([{"n": rng.randint(0, 9)} for _ in range(10)])
            # Prime the verdict cache with an "empty" proof...
            assert plain.count({"n": {"$gt": 100}}) == 0
            # ... then widen the universe it was proved against.
            outlier = rng.randint(101, 500)
            plain.insert({"n": outlier})
            assert plain.count({"n": {"$gt": 100}}) == 1
            assert plain.find({"n": {"$gt": 100}}) == [{"n": outlier}]

    def test_not_heavy_schemas(self):
        schema = {
            "type": "object",
            "required": ["v"],
            "properties": {
                "v": {
                    "allOf": [
                        {"not": {"type": "string"}},
                        {"not": {"type": "object"}},
                        {"type": "number", "minimum": 0, "maximum": 9},
                    ]
                }
            },
        }
        docs = [{"v": i} for i in range(10)]
        on = api.collection(docs, schema=schema)
        off = api.collection(docs, schema=schema, optimize="off")
        for filter_doc in (
            {"v": {"$gt": 100}},
            {"v": {"$gte": 0}},
            {"v": {"$lt": 5}},
            {"v": "text"},
        ):
            assert on.find(filter_doc) == off.find(filter_doc), filter_doc
            assert on.count(filter_doc) == off.count(filter_doc)
