"""Aggregation pipelines: stage semantics, pruning, differentials."""

from __future__ import annotations

import os
import random

import pytest

from repro.cache import artifact_cache, clear_artifact_cache
from repro.errors import ModelError, ParseError
from repro.explain import Explain
from repro.model.tree import JSONTree
from repro.mongo.aggregate import (
    CompiledPipeline,
    aggregate,
    compile_pipeline,
    compile_value_filter,
    match_value,
    naive_aggregate,
    parse_pipeline,
    pipeline_cache_key,
)
from repro.query import aggregate_many, compile_mongo_find, planner
from repro.query.stages import MISSING, resolve_path, sort_key, values_equal
from repro.store import Collection
from repro.workloads import people_collection
from repro import api

PEOPLE = people_collection(300, seed=7)

# The randomised differential suites scale with this knob: 1 per PR,
# ~20 in the scheduled nightly CI job.
_SCALE = int(os.environ.get("REPRO_DIFF_SCALE", "1"))


@pytest.fixture(scope="module")
def people() -> Collection:
    return api.collection(people_collection(300, seed=7))


def run(docs, pipeline):
    """Both executors over the same documents; asserts they agree.

    Always exercises the staged value path; documents inside the strict
    model (no null/booleans) additionally round through an indexed
    collection, which must not change a single row.
    """
    staged = aggregate_many(pipeline, docs)
    naive = naive_aggregate(docs, pipeline)
    assert staged == naive
    try:
        collection = api.collection(docs)
    except ModelError:
        pass  # null/booleans: outside the tree model, value path only
    else:
        assert aggregate(collection, pipeline) == naive
    return staged


# ---------------------------------------------------------------------------
# Stage semantics.
# ---------------------------------------------------------------------------


class TestUnwind:
    DOCS = [
        {"id": 0, "tags": ["a", "b"]},
        {"id": 1, "tags": []},
        {"id": 2},
        {"id": 3, "tags": "scalar"},
        {"id": 4, "tags": None},
    ]

    def test_array_emits_one_row_per_element(self):
        rows = run(self.DOCS, [{"$unwind": "$tags"}])
        assert [row["id"] for row in rows] == [0, 0, 3]
        assert rows[0]["tags"] == "a" and rows[1]["tags"] == "b"

    def test_non_array_passes_through_unchanged(self):
        rows = run(self.DOCS, [{"$unwind": "$tags"}])
        assert {"id": 3, "tags": "scalar"} in rows

    def test_missing_null_and_empty_drop_the_document(self):
        rows = run(self.DOCS, [{"$unwind": "$tags"}])
        assert all(row["id"] not in (1, 2, 4) for row in rows)

    def test_nested_path(self):
        docs = [{"a": {"b": [1, 2]}, "keep": "x"}]
        rows = run(docs, [{"$unwind": "$a.b"}])
        assert rows == [
            {"a": {"b": 1}, "keep": "x"},
            {"a": {"b": 2}, "keep": "x"},
        ]

    def test_options_form(self):
        rows = run(self.DOCS, [{"$unwind": {"path": "$tags"}}])
        assert len(rows) == 3

    def test_siblings_are_shared_not_copied_along_the_spine(self):
        docs = [{"a": {"b": [1, 2]}, "big": {"payload": [1, 2, 3]}}]
        rows = aggregate(api.collection(docs), [{"$unwind": "$a.b"}])
        assert rows[0]["big"] is rows[1]["big"]


class TestGroup:
    DOCS = [
        {"k": "x", "n": 1, "s": "p"},
        {"k": "x", "n": 3},
        {"k": "y", "n": 5, "s": "q"},
        {"k": "x", "n": "not-a-number"},
    ]

    def test_accumulators(self):
        rows = run(
            self.DOCS,
            [
                {
                    "$group": {
                        "_id": "$k",
                        "total": {"$sum": "$n"},
                        "avg": {"$avg": "$n"},
                        "low": {"$min": "$n"},
                        "high": {"$max": "$n"},
                        "all": {"$push": "$s"},
                        "rows": {"$count": {}},
                    }
                }
            ],
        )
        assert rows == [
            {
                "_id": "x",
                "total": 4,
                "avg": 2.0,
                "low": 1,
                "high": "not-a-number",
                "all": ["p"],
                "rows": 3,
            },
            {
                "_id": "y",
                "total": 5,
                "avg": 5.0,
                "low": 5,
                "high": 5,
                "all": ["q"],
                "rows": 1,
            },
        ]

    def test_missing_id_groups_as_null(self):
        rows = run(self.DOCS, [{"$group": {"_id": "$nope", "n": {"$sum": 1}}}])
        assert rows == [{"_id": None, "n": 4}]

    def test_composite_id_expression(self):
        rows = run(
            self.DOCS,
            [{"$group": {"_id": {"key": "$k", "tag": "lit"}, "n": {"$sum": 1}}}],
        )
        assert {"_id": {"key": "y", "tag": "lit"}, "n": 1} in rows

    def test_avg_of_no_numbers_is_null(self):
        rows = run(
            [{"k": "x", "v": "s"}],
            [{"$group": {"_id": "$k", "a": {"$avg": "$v"}}}],
        )
        assert rows == [{"_id": "x", "a": None}]

    def test_bool_and_int_ids_stay_distinct_groups(self):
        rows = run(
            [{"v": 1}, {"v": True}, {"v": 1}],
            [{"$group": {"_id": "$v", "n": {"$sum": 1}}}],
        )
        assert {"_id": 1, "n": 2} in rows
        assert {"_id": True, "n": 1} in rows


class TestSortSkipLimitCount:
    DOCS = [
        {"a": 3, "b": "z"},
        {"a": 1, "b": "y"},
        {"a": 3, "b": "x"},
        {"b": "w"},
    ]

    def test_multi_key_sort_with_directions(self):
        rows = run(self.DOCS, [{"$sort": {"a": -1, "b": 1}}])
        assert rows == [
            {"a": 3, "b": "x"},
            {"a": 3, "b": "z"},
            {"a": 1, "b": "y"},
            {"b": "w"},  # missing orders below every number, desc-last
        ]

    def test_missing_orders_first_ascending(self):
        rows = run(self.DOCS, [{"$sort": {"a": 1}}])
        assert rows[0] == {"b": "w"}

    def test_sort_is_stable_on_ties(self):
        rows = run(self.DOCS, [{"$sort": {"a": 1}}])
        assert rows[1:] == [self.DOCS[1], self.DOCS[0], self.DOCS[2]]

    def test_skip_and_limit(self):
        assert run(self.DOCS, [{"$sort": {"a": 1}}, {"$skip": 1}, {"$limit": 2}]) == [
            {"a": 1, "b": "y"},
            {"a": 3, "b": "z"},
        ]

    def test_skip_past_the_end(self):
        assert run(self.DOCS, [{"$skip": 99}]) == []

    def test_count(self):
        assert run(self.DOCS, [{"$count": "total"}]) == [{"total": 4}]

    def test_count_of_empty_input_emits_nothing(self):
        assert run(self.DOCS, [{"$match": {"a": 99}}, {"$count": "n"}]) == []


class TestProjectAndMatch:
    def test_inclusion_projection(self):
        rows = run(
            [{"a": 1, "b": 2, "c": {"d": 3, "e": 4}}],
            [{"$project": {"a": 1, "c.d": 1}}],
        )
        assert rows == [{"a": 1, "c": {"d": 3}}]

    def test_non_leading_match_runs_on_pipeline_products(self):
        rows = run(
            [{"k": "x", "n": 1}, {"k": "x", "n": 2}, {"k": "y", "n": 5}],
            [
                {"$group": {"_id": "$k", "total": {"$sum": "$n"}}},
                {"$match": {"total": {"$gt": 4}}},
            ],
        )
        assert rows == [{"_id": "y", "total": 5}]

    def test_empty_pipeline_returns_every_document(self):
        docs = [{"a": 1}, {"a": 2}]
        assert run(docs, []) == docs

    def test_match_only_pipeline(self):
        rows = run(PEOPLE, [{"$match": {"address.city": "Talca"}}])
        assert rows and all(r["address"]["city"] == "Talca" for r in rows)


# ---------------------------------------------------------------------------
# Parse errors.
# ---------------------------------------------------------------------------


class TestParseErrors:
    @pytest.mark.parametrize(
        "pipeline",
        [
            {"$match": {}},  # not a list
            [{"$match": {}, "$limit": 1}],  # two operators in one stage
            [{"$frobnicate": {}}],  # unknown stage
            [{"$group": {"n": {"$sum": 1}}}],  # no _id
            [{"$group": {"_id": None, "n": {"$bogus": 1}}}],  # bad accumulator
            [{"$group": {"_id": None, "a.b": {"$sum": 1}}}],  # dotted field
            [{"$group": {"_id": None, "n": {"$sum": 1, "$min": 1}}}],
            [{"$group": {"_id": None, "n": {"$count": {"x": 1}}}}],
            [{"$group": {"_id": {"$add": [1, 2]}, "n": {"$sum": 1}}}],
            [{"$sort": {}}],  # empty sort spec
            [{"$sort": {"a": 2}}],  # bad direction
            [{"$sort": {"a": True}}],  # boolean direction
            [{"$limit": 0}],
            [{"$limit": "3"}],
            [{"$skip": -1}],
            [{"$count": ""}],
            [{"$count": "$x"}],
            [{"$count": "a.b"}],
            [{"$unwind": "tags"}],  # no $ prefix
            [{"$unwind": 3}],
            [{"$unwind": "$"}],  # empty path
            [{"$match": {"age": {"$gt": "x"}}}],  # non-numeric bound
            [{"$match": {"age": {"$gt": True}}}],  # boolean bound
            [{"$match": {"hobbies": {"$size": 1.5}}}],  # $size stays integral
            [{"$limit": 5}, {"$match": {"hobbies": {"$size": 1.0}}}],
            [{"$match": {"$bogus": []}}],
            # Non-leading stages validate operands at compile time too:
            # position must not change whether a pipeline is accepted.
            [{"$limit": 5}, {"$match": {"age": {"$gt": "x"}}}],
            [{"$limit": 5}, {"$match": {"age": {"$in": 3}}}],
            [{"$limit": 5}, {"$match": {"a": {"$type": "frob"}}}],
            [{"$limit": 5}, {"$match": {"a": {"$regex": "("}}}],
            [{"$limit": 5}, {"$match": {"a": {"$not": {"$size": "x"}}}}],
            [{"$limit": 5}, {"$match": {"a": {"$elemMatch": {"$gt": []}}}}],
            [{"$project": {"a": 2}}],  # invalid projection flag
            [{"$project": {"a": 1, "b": 0}}],  # mixed projection
        ],
    )
    def test_rejected_at_compile_time(self, pipeline):
        with pytest.raises(ParseError):
            compile_pipeline(pipeline, cache=None)

    def test_naive_rejects_the_same_shapes(self):
        with pytest.raises(ParseError):
            naive_aggregate([], {"$match": {}})
        with pytest.raises(ParseError):
            naive_aggregate([], [{"$frobnicate": {}}])
        with pytest.raises(ParseError):
            naive_aggregate([], [{"$group": {"n": {"$sum": 1}}}])

    @pytest.mark.parametrize(
        "pipeline",
        [
            [{"$skip": True}],
            [{"$skip": -1}],
            [{"$skip": "2"}],
            [{"$limit": 0}],
            [{"$limit": "3"}],
            [{"$sort": {"a": 2}}],
            [{"$sort": {"a": True}}],
            [{"$count": 3}],
            [{"$count": "$x"}],
        ],
    )
    def test_naive_validates_specs_like_the_staged_executor(self, pipeline):
        """Both evaluators must reject an invalid spec, never TypeError
        or silently succeed on one side (the differential oracle has to
        agree on invalid-input behaviour too)."""
        with pytest.raises(ParseError):
            compile_pipeline(pipeline, cache=None)
        with pytest.raises(ParseError):
            naive_aggregate([{"a": 1}], pipeline)

    def test_parse_pipeline_normalises(self):
        assert parse_pipeline([{"$limit": 3}]) == (("$limit", 3),)


# ---------------------------------------------------------------------------
# Index pruning: the leading $match provably routes through the planner.
# ---------------------------------------------------------------------------


class TestIndexPruning:
    PIPELINE = [
        {"$match": {"name.first": "Sue", "address.city": "Santiago"}},
        {"$group": {"_id": "$name.last", "n": {"$sum": 1}}},
    ]

    def test_explain_reports_index_pruning(self, people):
        report = people.explain_aggregate(self.PIPELINE)
        assert report.used_indexes
        assert report.candidates is not None
        assert report.candidates < report.total
        assert report.scanned == report.candidates
        assert report.pruned == report.total - report.scanned
        assert report.stages[0].mode == "index-pruned"
        assert report.stages[1].op == "$group"
        assert report.stages[1].mode == "materialised"

    def test_lead_query_goes_through_the_planner(self, people):
        """The merged leading $match is a PR-3 logical plan: the
        planner's own find explain agrees with the aggregation report."""
        compiled = compile_pipeline(self.PIPELINE)
        assert compiled.lead_query is not None
        plan_report = planner.explain(people, compiled.lead_query)
        agg_report = compiled.explain(people)
        assert isinstance(plan_report, Explain)
        assert plan_report.kind == "find"
        assert plan_report.used_indexes
        assert plan_report.matched == agg_report.matched
        assert agg_report.scanned < len(people)

    def test_consecutive_leading_matches_merge(self, people):
        split = [
            {"$match": {"name.first": "Sue"}},
            {"$match": {"address.city": "Santiago"}},
            {"$group": {"_id": "$name.last", "n": {"$sum": 1}}},
        ]
        compiled = compile_pipeline(split)
        assert compiled.lead_count == 2
        report = compiled.explain(people)
        assert [stage.mode for stage in report.stages] == [
            "index-pruned",
            "index-pruned",
            "materialised",
        ]
        assert compiled.execute(people) == aggregate(people, self.PIPELINE)

    def test_non_leading_match_is_streamed(self, people):
        pipeline = [
            {"$unwind": "$hobbies"},
            {"$match": {"hobbies": "chess"}},
        ]
        report = people.explain_aggregate(pipeline)
        assert report.candidates is None  # no leading $match to prune with
        assert report.scanned == report.total
        assert [stage.mode for stage in report.stages] == ["streamed", "streamed"]

    def test_unindexed_collection_streams(self):
        collection = api.collection(PEOPLE[:50], indexed=False)
        report = collection.explain_aggregate(self.PIPELINE)
        assert not report.used_indexes
        assert report.stages[0].mode == "streamed"
        assert collection.aggregate(self.PIPELINE) == naive_aggregate(
            PEOPLE[:50], self.PIPELINE
        )

    def test_mutation_is_never_stale(self):
        collection = api.collection(PEOPLE[:20])
        pipeline = [
            {"$match": {"address.city": "Talca"}},
            {"$count": "n"},
        ]
        before = collection.aggregate(pipeline)
        added = collection.insert(
            {"id": 999, "address": {"city": "Talca"}, "age": 1}
        )
        after = collection.aggregate(pipeline)
        expected = (before[0]["n"] if before else 0) + 1
        assert after == [{"n": expected}]
        collection.remove(added)
        assert collection.aggregate(pipeline) == before


# ---------------------------------------------------------------------------
# The find-dialect fallback: stage position never changes acceptance.
# ---------------------------------------------------------------------------


class TestFindDialectFallback:
    """Filters valid in value space but outside the find compiler's
    dialect (float comparison bounds, $regex beyond the KeyLang subset)
    run in any position -- a leading one just scans instead of pruning.
    """

    DOCS = [{"x": 1}, {"x": 1.4}, {"x": 1.6}, {"x": 2}, {"x": "s"}]

    def test_float_bounds_match_in_any_position(self):
        assert run(self.DOCS, [{"$match": {"x": {"$gt": 1.5}}}]) == [
            {"x": 1.6},
            {"x": 2},
        ]
        assert run(
            self.DOCS,
            [{"$limit": 5}, {"$match": {"x": {"$gte": 1.4, "$lt": 1.7}}}],
        ) == [{"x": 1.4}, {"x": 1.6}]

    def test_float_bound_on_pipeline_products(self):
        """$avg output is a float; a downstream $match must be able to
        bound it with a float operand."""
        docs = [{"k": "x", "n": 1}, {"k": "x", "n": 2}, {"k": "y", "n": 4}]
        rows = run(
            docs,
            [
                {"$group": {"_id": "$k", "avg": {"$avg": "$n"}}},
                {"$match": {"avg": {"$gt": 1.75}}},
            ],
        )
        assert rows == [{"_id": "y", "avg": 4.0}]

    def test_leading_float_bound_streams_instead_of_pruning(self, people):
        pipeline = [{"$match": {"age": {"$gt": 39.5}}}]
        compiled = compile_pipeline(pipeline, cache=None)
        assert compiled.lead_pred is not None
        assert compiled.lead_query is None  # no logical plan to prune with
        report = compiled.explain(people)
        assert not report.used_indexes
        assert report.stages[0].mode == "streamed"
        assert compiled.execute(people) == naive_aggregate(PEOPLE, pipeline)
        # Integer ages: > 39.5 and >= 40 are the same predicate.
        assert compiled.execute(people) == aggregate(
            people, [{"$match": {"age": {"$gte": 40}}}]
        )

    def test_leading_regex_outside_keylang_subset_streams(self, people):
        pipeline = [{"$match": {"name.first": {"$regex": "(?i)^sue$"}}}]
        compiled = compile_pipeline(pipeline, cache=None)
        assert compiled.lead_query is None
        rows = compiled.execute(people)
        assert rows == [
            doc for doc in PEOPLE if doc["name"]["first"].lower() == "sue"
        ]
        assert rows == naive_aggregate(PEOPLE, pipeline)

    def test_invalid_leading_filters_still_fail_at_compile_time(self):
        """The fallback must not swallow genuinely bad filters."""
        for pipeline in (
            [{"$match": {"age": {"$gt": "x"}}}],
            [{"$match": {"a": {"$regex": "("}}}],
            [{"$match": {"$bogus": []}}],
        ):
            with pytest.raises(ParseError):
                compile_pipeline(pipeline, cache=None)


# ---------------------------------------------------------------------------
# The compile cache.
# ---------------------------------------------------------------------------


class TestPipelineCache:
    def test_structurally_equal_pipelines_share_one_plan(self):
        clear_artifact_cache()
        try:
            first = compile_pipeline([{"$match": {"a": 1}}, {"$limit": 2}])
            second = compile_pipeline([{"$match": {"a": 1}}, {"$limit": 2}])
            assert first is second
            assert artifact_cache().stats().hits >= 1
        finally:
            clear_artifact_cache()

    def test_sort_key_order_is_not_canonicalised_away(self):
        """$sort spec key order is precedence: pipelines differing only
        in it must compile to distinct cached plans (regression for the
        sort_keys=True cache key, which collided them and served one
        pipeline the other's sort order)."""
        ab = [{"$sort": {"a": 1, "b": 1}}]
        ba = [{"$sort": {"b": 1, "a": 1}}]
        assert pipeline_cache_key(ab) != pipeline_cache_key(ba)
        clear_artifact_cache()
        try:
            assert compile_pipeline(ab) is not compile_pipeline(ba)
            docs = [{"a": 2, "b": 1}, {"a": 1, "b": 2}]
            assert aggregate(docs, ab) == [{"a": 1, "b": 2}, {"a": 2, "b": 1}]
            assert aggregate(docs, ba) == [{"a": 2, "b": 1}, {"a": 1, "b": 2}]
            assert aggregate(docs, ab) == naive_aggregate(docs, ab)
            assert aggregate(docs, ba) == naive_aggregate(docs, ba)
        finally:
            clear_artifact_cache()

    def test_cache_none_compiles_fresh(self):
        pipeline = [{"$limit": 1}]
        assert compile_pipeline(pipeline, cache=None) is not compile_pipeline(
            pipeline, cache=None
        )

    def test_plans_are_collection_independent(self, people):
        compiled = compile_pipeline([{"$match": {"name.first": "Sue"}}])
        small = api.collection(PEOPLE[:10])
        assert compiled.execute(small) == naive_aggregate(
            PEOPLE[:10], [{"$match": {"name.first": "Sue"}}]
        )
        assert compiled.execute(people) == naive_aggregate(
            PEOPLE, [{"$match": {"name.first": "Sue"}}]
        )


# ---------------------------------------------------------------------------
# Batch API and input flavours.
# ---------------------------------------------------------------------------


class TestInputFlavours:
    PIPELINE = [
        {"$match": {"age": {"$gt": 40}}},
        {"$group": {"_id": "$address.city", "n": {"$sum": 1}}},
        {"$sort": {"_id": 1}},
    ]

    def test_aggregate_many_over_trees(self):
        trees = [JSONTree.from_value(doc) for doc in PEOPLE[:80]]
        assert aggregate_many(self.PIPELINE, trees) == naive_aggregate(
            PEOPLE[:80], self.PIPELINE
        )

    def test_aggregate_many_over_plain_values(self):
        assert aggregate_many(self.PIPELINE, PEOPLE[:80]) == naive_aggregate(
            PEOPLE[:80], self.PIPELINE
        )

    def test_aggregate_many_over_a_collection(self, people):
        assert aggregate_many(self.PIPELINE, people) == naive_aggregate(
            PEOPLE, self.PIPELINE
        )

    def test_empty_collection(self):
        empty = api.collection([])
        assert empty.aggregate(self.PIPELINE) == []
        assert empty.aggregate([{"$count": "n"}]) == []

    def test_stream_is_lazy(self, people):
        compiled = compile_pipeline([{"$match": {"name.first": "Sue"}}])
        stream = compiled.stream(people)
        first = next(stream)
        assert first["name"]["first"] == "Sue"


# ---------------------------------------------------------------------------
# match_value vs the compiled find filter (the two $match engines).
# ---------------------------------------------------------------------------

FILTERS = [
    {"name.first": "Sue"},
    {"name.first": "Sue", "address.city": "Santiago"},
    {"age": {"$gt": 60}},
    {"age": {"$gte": 60, "$lt": 70}},
    {"age": {"$ne": 30}},
    {"age": {"$in": [20, 30, 40]}},
    {"age": {"$nin": [20, 30, 40]}},
    {"hobbies": "chess"},  # array-containment equality
    {"hobbies.0": "chess"},  # digit segment = array index
    {"hobbies": {"$size": 2}},
    {"hobbies": {"$elemMatch": {"$eq": "yoga"}}},
    {"hobbies": {"$exists": True}},
    {"pets": {"$exists": False}},
    {"name.first": {"$regex": "^S"}},
    {"name.first": {"$regex": "u"}},
    {"name": {"$type": "object"}},
    {"hobbies": {"$type": "array"}},
    {"age": {"$type": "number"}},
    {"age": {"$not": {"$lt": 50}}},
    {"$or": [{"age": {"$lt": 25}}, {"age": {"$gt": 80}}]},
    {"$and": [{"age": {"$gt": 25}}, {"age": {"$lt": 80}}]},
    {"$nor": [{"name.first": "Sue"}, {"name.first": "Bob"}]},
]


class TestMatchValueDifferential:
    @pytest.mark.parametrize("filter_doc", FILTERS)
    def test_value_space_agrees_with_compiled_jnl(self, filter_doc):
        query = compile_mongo_find(filter_doc)
        closure = compile_value_filter(filter_doc)
        for doc in PEOPLE[:120]:
            tree = JSONTree.from_value(doc)
            compiled = query.matches(tree)
            interpreted = match_value(filter_doc, doc)
            assert compiled == interpreted, (filter_doc, doc)
            assert closure(doc) == interpreted, (filter_doc, doc)

    @pytest.mark.parametrize("filter_doc", FILTERS)
    def test_pruning_is_sound_for_every_filter(self, filter_doc, people):
        """Index candidates must be a superset of the true matches."""
        query = compile_mongo_find(filter_doc)
        candidates = planner.candidate_ids(
            query.plan.match_predicate, people.indexes
        )
        matches = {
            doc_id
            for doc_id, tree in people.documents()
            if match_value(filter_doc, tree.to_value())
        }
        if candidates is not None:
            assert matches <= candidates


# ---------------------------------------------------------------------------
# Randomised differential pipelines.
# ---------------------------------------------------------------------------


def _random_pipeline(rng: random.Random) -> list:
    stages = []
    if rng.random() < 0.8:
        stages.append({"$match": rng.choice(FILTERS)})
        if rng.random() < 0.3:
            stages.append({"$match": rng.choice(FILTERS)})
    pool = rng.sample(
        [
            {"$unwind": "$hobbies"},
            {"$project": {"name.first": 1, "age": 1, "hobbies": 1}},
            {"$sort": {"age": -1, "id": 1}},
            {
                "$group": {
                    "_id": "$name.first",
                    "n": {"$sum": 1},
                    "avg": {"$avg": "$age"},
                    "oldest": {"$max": "$age"},
                    "youngest": {"$min": "$age"},
                    "ages": {"$push": "$age"},
                }
            },
            {"$skip": rng.randrange(0, 5)},
            {"$limit": rng.randrange(1, 40)},
        ],
        k=rng.randrange(1, 4),
    )
    stages.extend(pool)
    if rng.random() < 0.2:
        stages.append({"$count": "rows"})
    return stages


class TestRandomisedDifferential:
    def test_staged_equals_naive_on_random_pipelines(self, people):
        rng = random.Random(1234)
        docs = PEOPLE
        for _ in range(60 * _SCALE):
            pipeline = _random_pipeline(rng)
            staged = aggregate(people, pipeline)
            naive = naive_aggregate(docs, pipeline)
            assert staged == naive, pipeline

    def test_tree_iterable_equals_naive_on_random_pipelines(self):
        rng = random.Random(987)
        docs = PEOPLE[:100]
        trees = [JSONTree.from_value(doc) for doc in docs]
        for _ in range(25 * _SCALE):
            pipeline = _random_pipeline(rng)
            assert aggregate_many(pipeline, trees) == naive_aggregate(
                docs, pipeline
            ), pipeline

    def test_unindexed_equals_indexed_on_random_pipelines(self):
        rng = random.Random(55)
        docs = PEOPLE[:100]
        indexed = api.collection(docs)
        unindexed = api.collection(docs, indexed=False)
        for _ in range(25 * _SCALE):
            pipeline = _random_pipeline(rng)
            assert aggregate(indexed, pipeline) == aggregate(
                unindexed, pipeline
            ), pipeline


# ---------------------------------------------------------------------------
# Value-space kernels.
# ---------------------------------------------------------------------------


class TestKernels:
    def test_resolve_path_digit_segments(self):
        doc = {"a": [{"b": 1}, {"b": 2}]}
        assert resolve_path(doc, ("a", "1", "b")) == 2
        assert resolve_path(doc, ("a", "9", "b")) is MISSING
        assert resolve_path(doc, ("a", "b")) is MISSING

    def test_values_equal_is_type_strict(self):
        assert not values_equal(1, True)
        assert not values_equal(0, False)
        assert values_equal({"a": 1, "b": 2}, {"b": 2, "a": 1})
        assert not values_equal([1, 2], [2, 1])

    def test_sort_key_total_order(self):
        ordered = [MISSING, None, 0, 5, "a", "b", True, [1], {"a": 1}]
        keys = [sort_key(value) for value in ordered]
        assert keys == sorted(keys)

    def test_repr(self):
        compiled = CompiledPipeline([{"$limit": 1}])
        assert "CompiledPipeline" in repr(compiled)
