"""Unit tests for the JSON-tree data model (Section 3.1)."""

from __future__ import annotations

import pytest

from repro.errors import (
    DuplicateKeyError,
    ModelError,
    UnsupportedValueError,
)
from repro.model.tree import JSONTree, Kind


class TestConstruction:
    def test_from_value_kinds(self):
        tree = JSONTree.from_value({"s": "x", "n": 7, "a": [1], "o": {}})
        root = tree.root
        assert tree.kind(root) is Kind.OBJECT
        assert tree.kind(tree.object_child(root, "s")) is Kind.STRING
        assert tree.kind(tree.object_child(root, "n")) is Kind.NUMBER
        assert tree.kind(tree.object_child(root, "a")) is Kind.ARRAY
        assert tree.kind(tree.object_child(root, "o")) is Kind.OBJECT

    def test_figure1_node_count(self, figure1_doc):
        # {name:{first,last}, age, hobbies:[f,y]}: 1+1+2+1+1+2 = 8 nodes.
        assert len(figure1_doc) == 8

    def test_section3_five_values(self, section3_doc):
        # The paper counts 5 JSON values inside the Section 3 document.
        assert len(section3_doc) == 5

    def test_atomic_root(self):
        assert JSONTree.from_value(5).to_value() == 5
        assert JSONTree.from_value("x").to_value() == "x"

    def test_tuple_becomes_array(self):
        assert JSONTree.from_value((1, 2)).to_value() == [1, 2]

    def test_floats_rejected(self):
        with pytest.raises(UnsupportedValueError):
            JSONTree.from_value({"x": 1.5})

    def test_booleans_rejected_by_default(self):
        with pytest.raises(UnsupportedValueError):
            JSONTree.from_value({"x": True})

    def test_none_rejected_by_default(self):
        with pytest.raises(UnsupportedValueError):
            JSONTree.from_value(None)

    def test_extended_mode_coerces_literals(self):
        tree = JSONTree.from_value([True, False, None], extended=True)
        assert tree.to_value() == ["true", "false", "null"]

    def test_non_string_keys_rejected(self):
        with pytest.raises(UnsupportedValueError):
            JSONTree.from_value({1: "x"})  # type: ignore[dict-item]


class TestFromJson:
    def test_round_trip(self, figure1_doc):
        text = figure1_doc.to_json()
        again = JSONTree.from_json(text)
        assert again == figure1_doc

    def test_duplicate_keys_detected(self):
        with pytest.raises(DuplicateKeyError):
            JSONTree.from_json('{"a": 1, "a": 2}')

    def test_nested_duplicate_keys_detected(self):
        with pytest.raises(DuplicateKeyError):
            JSONTree.from_json('{"outer": {"k": 1, "k": 2}}')

    def test_floats_rejected_in_text(self):
        with pytest.raises(UnsupportedValueError):
            JSONTree.from_json("[1.5]")

    def test_literals_rejected_without_extended(self):
        with pytest.raises(UnsupportedValueError):
            JSONTree.from_json("[true]")

    def test_extended_literals(self):
        assert JSONTree.from_json("[true, null]", extended=True).to_value() == [
            "true",
            "null",
        ]

    def test_malformed_text(self):
        with pytest.raises(ModelError):
            JSONTree.from_json("{nope}")


class TestAccess:
    def test_object_child_and_keys(self, figure1_doc):
        root = figure1_doc.root
        assert set(figure1_doc.object_keys(root)) == {"name", "age", "hobbies"}
        assert figure1_doc.object_child(root, "missing") is None

    def test_array_access(self, figure1_doc):
        hobbies = figure1_doc.object_child(figure1_doc.root, "hobbies")
        assert figure1_doc.array_length(hobbies) == 2
        first = figure1_doc.array_child(hobbies, 0)
        assert figure1_doc.value(first) == "fishing"
        assert figure1_doc.array_child(hobbies, 2) is None

    def test_negative_index_is_from_the_end(self, figure1_doc):
        hobbies = figure1_doc.object_child(figure1_doc.root, "hobbies")
        last = figure1_doc.array_child(hobbies, -1)
        assert figure1_doc.value(last) == "yoga"
        assert figure1_doc.array_child(hobbies, -3) is None

    def test_value_on_non_leaf_raises(self, figure1_doc):
        with pytest.raises(ModelError):
            figure1_doc.value(figure1_doc.root)

    def test_edges_carry_labels(self, figure1_doc):
        hobbies = figure1_doc.object_child(figure1_doc.root, "hobbies")
        assert [label for label, _ in figure1_doc.edges(hobbies)] == [0, 1]

    def test_parent_and_edge_label(self, figure1_doc):
        name = figure1_doc.object_child(figure1_doc.root, "name")
        assert figure1_doc.parent(name) == figure1_doc.root
        assert figure1_doc.edge_label(name) == "name"
        assert figure1_doc.parent(figure1_doc.root) is None


class TestTreeDomain:
    def test_domain_path(self, section3_doc):
        first = section3_doc.object_child(
            section3_doc.object_child(section3_doc.root, "name"), "first"
        )
        assert section3_doc.domain_path(first) == (0, 0)

    def test_label_path(self, figure1_doc):
        hobbies = figure1_doc.object_child(figure1_doc.root, "hobbies")
        yoga = figure1_doc.array_child(hobbies, 1)
        assert figure1_doc.label_path(yoga) == ("hobbies", 1)

    def test_height(self, figure1_doc):
        assert figure1_doc.height() == 2
        assert JSONTree.from_value(5).height() == 0

    def test_postorder_children_first(self, figure1_doc):
        seen: set[int] = set()
        for node in figure1_doc.postorder():
            for child in figure1_doc.children(node):
                assert child in seen
            seen.add(node)

    def test_descendants_preorder(self, figure1_doc):
        order = list(figure1_doc.descendants(figure1_doc.root))
        assert order[0] == figure1_doc.root
        assert len(order) == len(figure1_doc)


class TestSubtree:
    def test_subtree_is_valid_json(self, section3_doc):
        name = section3_doc.object_child(section3_doc.root, "name")
        sub = section3_doc.subtree(name)
        sub.validate()
        assert sub.to_value() == {"first": "John", "last": "Doe"}

    def test_subtree_of_leaf(self, section3_doc):
        age = section3_doc.object_child(section3_doc.root, "age")
        assert section3_doc.subtree(age).to_value() == 32

    def test_every_subtree_validates(self, figure1_doc):
        for node in figure1_doc.nodes():
            figure1_doc.subtree(node).validate()


class TestDeepDocuments:
    def test_deep_chain_beyond_recursion_limit(self):
        import sys

        depth = sys.getrecursionlimit() + 500
        value: object = 0
        for _ in range(depth):
            value = {"a": value}
        tree = JSONTree.from_value(value)
        assert tree.height() == depth
        assert len(tree) == depth + 1
        round_tripped = tree.to_value()
        for _ in range(depth):
            round_tripped = round_tripped["a"]
        assert round_tripped == 0


class TestValidate:
    def test_validate_accepts_built_trees(self, figure1_doc):
        figure1_doc.validate()

    def test_repr_truncates(self, figure1_doc):
        assert len(repr(figure1_doc)) < 80
