"""Cache behaviour of the compiled-query subsystem.

Covers the satellite requirements explicitly: hit/miss counters,
eviction at capacity, and that batch evaluation never serves stale
results for trees that changed after a plan was cached (the cache holds
only tree-independent compilation artifacts).
"""

from __future__ import annotations

import pytest

from repro.model.tree import JSONTree
from repro.query import (
    LRUCache,
    clear_query_cache,
    compile_mongo_find,
    compile_query,
    configure_query_cache,
    evaluate_many,
    query_cache,
    query_cache_stats,
)
from repro.cache import DEFAULT_CAPACITY


@pytest.fixture
def clean_global_cache():
    """An empty global cache, restored to defaults afterwards."""
    clear_query_cache()
    configure_query_cache(DEFAULT_CAPACITY)
    yield query_cache()
    clear_query_cache()
    configure_query_cache(DEFAULT_CAPACITY)


class TestLRUCache:
    def test_hit_and_miss_counters(self):
        cache = LRUCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (2, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_get_or_compute_counts_once_per_key(self):
        cache = LRUCache(capacity=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("k", lambda: calls.append(1) or 42)
            assert value == 42
        assert len(calls) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (2, 1)

    def test_eviction_at_capacity(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a", the least recently used
        assert len(cache) == 2
        assert cache.stats().evictions == 1
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_recency_refresh_changes_eviction_victim(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # now evicts "b"
        assert "a" in cache and "b" not in cache

    def test_resize_shrinks_and_evicts(self):
        cache = LRUCache(capacity=4)
        for key in "abcd":
            cache.put(key, key)
        cache.resize(2)
        assert len(cache) == 2
        assert cache.stats().capacity == 2
        assert cache.stats().evictions == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)
        with pytest.raises(ValueError):
            LRUCache(capacity=4).resize(-1)

    def test_clear_resets_counters(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)


class TestGlobalCompileCache:
    def test_repeat_compilation_hits(self, clean_global_cache):
        first = compile_query("$.a.b", "jsonpath")
        second = compile_query("$.a.b", "jsonpath")
        assert first is second
        stats = query_cache_stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_dialect_is_part_of_the_key(self, clean_global_cache):
        jnl_plan = compile_query("has(.a)", "jnl")
        # Same text under a different dialect must not collide.
        with pytest.raises(Exception):
            compile_query("has(.a)", "jsonpath")
        assert compile_query("has(.a)", "jnl") is jnl_plan

    def test_mongo_key_is_canonical(self, clean_global_cache):
        first = compile_mongo_find({"a": 1, "b": 2})
        second = compile_mongo_find({"b": 2, "a": 1})  # same filter, reordered
        assert first is second
        assert query_cache_stats().hits == 1

    def test_mongo_projection_distinguishes_plans(self, clean_global_cache):
        bare = compile_mongo_find({"a": 1})
        projected = compile_mongo_find({"a": 1}, {"a": 1})
        assert bare is not projected
        assert projected.projection is not None

    def test_capacity_eviction_recompiles(self, clean_global_cache):
        configure_query_cache(2)
        plan_a = compile_query("$.a", "jsonpath")
        compile_query("$.b", "jsonpath")
        compile_query("$.c", "jsonpath")  # evicts $.a
        stats = query_cache_stats()
        assert stats.evictions == 1 and stats.size == 2
        assert compile_query("$.a", "jsonpath") is not plan_a  # recompiled

    def test_cache_none_bypasses(self, clean_global_cache):
        first = compile_query("$.a", "jsonpath", cache=None)
        second = compile_query("$.a", "jsonpath", cache=None)
        assert first is not second
        stats = query_cache_stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_private_cache_instance(self, clean_global_cache):
        private = LRUCache(capacity=8)
        compile_query("$.a", "jsonpath", cache=private)
        compile_query("$.a", "jsonpath", cache=private)
        assert private.stats().hits == 1
        assert query_cache_stats().misses == 0  # global untouched


class TestNoStaleResults:
    """Cached plans hold no per-tree state, so results always reflect
    the trees passed in -- even after in-place mutation or rebuilds."""

    def test_mutated_tree_not_stale_in_batch(self, clean_global_cache):
        tree = JSONTree.from_value({"a": {"b": "old"}, "c": 1})
        query = compile_query("$.a.b", "jsonpath")
        assert evaluate_many(query, [tree]) == [["old"]]
        # Mutate the leaf in place (bypassing the immutable facade, as
        # a stale per-tree cache would be fooled by exactly this).
        leaf = query.select(tree)[0]
        tree._values[leaf] = "new"
        assert evaluate_many(query, [tree]) == [["new"]]

    def test_mutated_value_changes_cached_filter_verdict(self, clean_global_cache):
        tree = JSONTree.from_value({"age": 50})
        query = compile_mongo_find({"age": {"$gte": 40}})
        assert query.matches(tree)
        (age_leaf,) = [n for n in tree.nodes() if tree.is_number(n)]
        tree._values[age_leaf] = 12
        assert compile_mongo_find({"age": {"$gte": 40}}) is query  # cache hit
        assert not query.matches(tree)

    def test_rebuilt_tree_evaluated_fresh(self, clean_global_cache):
        query = compile_query("$.items[*]", "jsonpath")
        assert query.values(JSONTree.from_value({"items": [1, 2]})) == [1, 2]
        assert query.values(JSONTree.from_value({"items": [9]})) == [9]

    def test_batch_over_growing_collection(self, clean_global_cache):
        query = compile_mongo_find({"x": {"$gte": 1}})
        trees = [JSONTree.from_value({"x": 0})]
        from repro.query import match_many

        assert match_many(query, trees) == [False]
        trees.append(JSONTree.from_value({"x": 5}))
        assert match_many(query, trees) == [False, True]


class TestDeprecatedShimParity:
    """The repro.query.cache shim must track repro.cache exactly."""

    # Shim alias -> the repro.cache name it must re-export.
    MAPPING = {
        "CacheStats": "CacheStats",
        "LRUCache": "LRUCache",
        "DEFAULT_CAPACITY": "DEFAULT_CAPACITY",
        "query_cache": "artifact_cache",
        "query_cache_stats": "artifact_cache_stats",
        "clear_query_cache": "clear_artifact_cache",
        "configure_query_cache": "configure_artifact_cache",
    }

    def _fresh_shim(self):
        import importlib
        import sys

        sys.modules.pop("repro.query.cache", None)
        with pytest.warns(DeprecationWarning, match="repro.query.cache"):
            return importlib.import_module("repro.query.cache")

    def test_public_surface_matches_repro_cache(self):
        import repro.cache as canonical

        shim = self._fresh_shim()
        assert sorted(shim.__all__) == sorted(self.MAPPING)
        for alias, target in self.MAPPING.items():
            assert getattr(shim, alias) is getattr(canonical, target), alias

    def test_shim_behaviour_parity(self):
        """The re-exported callables act on the shared artifact cache."""
        from repro.cache import artifact_cache, artifact_cache_stats

        shim = self._fresh_shim()
        assert shim.query_cache() is artifact_cache()
        assert shim.query_cache_stats() == artifact_cache_stats()

    def test_warns_once_per_import_not_per_use(self):
        import importlib
        import sys
        import warnings

        self._fresh_shim()  # first import warns (asserted inside)
        with warnings.catch_warnings():
            # A later import hits the module cache, attribute access is
            # silent: any DeprecationWarning here becomes an error.
            warnings.simplefilter("error", DeprecationWarning)
            shim = importlib.import_module("repro.query.cache")
            shim.query_cache()
            shim.query_cache_stats()
        assert "repro.query.cache" in sys.modules
