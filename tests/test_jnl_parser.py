"""The JNL concrete syntax."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.jnl import ast
from repro.jnl.parser import parse_jnl, parse_jnl_path, parse_node_test_text
from repro.logic import nodetests as nt


class TestUnaryParsing:
    def test_constants(self):
        assert parse_jnl("true") == ast.Top()
        assert parse_jnl("false") == ast.Not(ast.Top())

    def test_has_path(self):
        formula = parse_jnl("has(.name.first)")
        assert formula == ast.Exists(
            ast.Compose(ast.Key("name"), ast.Key("first"))
        )

    def test_matches_literal(self):
        formula = parse_jnl("matches(.age, 32)")
        assert isinstance(formula, ast.EqDoc)
        assert formula.doc.to_value() == 32

    def test_matches_object_literal(self):
        formula = parse_jnl('matches(.name, {"first": "John"})')
        assert isinstance(formula, ast.EqDoc)
        assert formula.doc.to_value() == {"first": "John"}

    def test_eq_paths(self):
        formula = parse_jnl("eq(.a, .b)")
        assert formula == ast.EqPath(ast.Key("a"), ast.Key("b"))

    def test_precedence_or_under_and(self):
        formula = parse_jnl("true and false or true")
        # 'and' binds tighter: (true and false) or true.
        assert isinstance(formula, ast.Or)
        assert isinstance(formula.left, ast.And)

    def test_not_binds_tightest(self):
        formula = parse_jnl("not true and false")
        assert isinstance(formula, ast.And)
        assert isinstance(formula.left, ast.Not)

    def test_parenthesised(self):
        formula = parse_jnl("not (true or false)")
        assert isinstance(formula, ast.Not)
        assert isinstance(formula.operand, ast.Or)

    @pytest.mark.parametrize(
        "text",
        ["", "has(", "has(.a,)", "matches(.a)", "true or", "has(.a) extra"],
    )
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse_jnl(text)


class TestPathParsing:
    def test_quoted_key(self):
        assert parse_jnl_path('."first name"') == ast.Key("first name")

    def test_regex_key(self):
        path = parse_jnl_path("./a(b|c)a/")
        assert isinstance(path, ast.KeyRegex)
        assert path.lang.matches("aba")

    def test_regex_key_with_escaped_slash(self):
        path = parse_jnl_path("./a\\/b/")
        assert isinstance(path, ast.KeyRegex)
        assert path.lang.matches("a/b")

    def test_any_key(self):
        path = parse_jnl_path(".*")
        assert isinstance(path, ast.KeyRegex)
        assert path.lang.matches("anything")

    def test_indices(self):
        assert parse_jnl_path("[3]") == ast.Index(3)
        assert parse_jnl_path("[-1]") == ast.Index(-1)
        assert parse_jnl_path("[1:4]") == ast.IndexRange(1, 4)
        assert parse_jnl_path("[2:]") == ast.IndexRange(2, None)
        assert parse_jnl_path("[:3]") == ast.IndexRange(0, 3)
        assert parse_jnl_path("[*]") == ast.IndexRange(0, None)

    def test_composition_by_juxtaposition(self):
        path = parse_jnl_path(".a[0].b")
        assert path == ast.Compose(
            ast.Compose(ast.Key("a"), ast.Index(0)), ast.Key("b")
        )

    def test_star_postfix(self):
        path = parse_jnl_path("(.a)*")
        assert path == ast.Star(ast.Key("a"))

    def test_union(self):
        path = parse_jnl_path(".a | [0]")
        assert path == ast.Union(ast.Key("a"), ast.Index(0))

    def test_test_brackets(self):
        path = parse_jnl_path(".a<true>")
        assert path == ast.Compose(ast.Key("a"), ast.Test(ast.Top()))

    def test_eps(self):
        assert parse_jnl_path("eps") == ast.Eps()

    def test_invalid_range(self):
        with pytest.raises(ParseError):
            parse_jnl_path("[4:2]")


class TestNodeTestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("object", nt.IsObject()),
            ("array", nt.IsArray()),
            ("string", nt.IsString()),
            ("number", nt.IsNumber()),
            ("unique", nt.Unique()),
            ("min(4)", nt.MinVal(4)),
            ("max(9)", nt.MaxVal(9)),
            ("multipleof(3)", nt.MultOf(3)),
            ("minch(2)", nt.MinCh(2)),
            ("maxch(5)", nt.MaxCh(5)),
        ],
    )
    def test_atoms(self, text, expected):
        assert parse_node_test_text(text) == expected

    def test_pattern(self):
        test = parse_node_test_text('pattern("ab*")')
        assert isinstance(test, nt.Pattern)
        assert test.lang.matches("abb")

    def test_value(self):
        test = parse_node_test_text("value([1, 2])")
        assert isinstance(test, nt.EqDocTest)
        assert test.doc.to_value() == [1, 2]

    def test_unknown(self):
        with pytest.raises(ParseError):
            parse_node_test_text("frobnicate(2)")


class TestClassification:
    def test_deterministic(self):
        assert ast.is_deterministic(parse_jnl("has(.a[0].b)"))
        assert not ast.is_deterministic(parse_jnl("has(./a.*/)"))
        assert not ast.is_deterministic(parse_jnl("has([0:2])"))
        assert not ast.is_deterministic(parse_jnl("has((.a)*)"))

    def test_recursive(self):
        assert ast.is_recursive(parse_jnl("has((.a)*)"))
        assert not ast.is_recursive(parse_jnl("has(.a)"))

    def test_uses_eqpath(self):
        assert ast.uses_eqpath(parse_jnl("eq(.a, .b)"))
        assert not ast.uses_eqpath(parse_jnl("matches(.a, 1)"))

    def test_purity(self):
        assert ast.is_pure(parse_jnl("has(.a)"))
        assert not ast.is_pure(parse_jnl("test(number)"))
        assert not ast.is_pure(parse_jnl("has(.a | .b)"))

    def test_formula_size_counts_nodes(self):
        assert ast.formula_size(parse_jnl("true")) == 1
        assert ast.formula_size(parse_jnl("has(.a.b)")) == 4

    def test_axis_depth(self):
        assert ast.axis_depth(parse_jnl("has(.a.b.c)")) == 3
        assert ast.axis_depth(parse_jnl("true")) == 0
