"""Sharded collections: hash routing, mergeable accumulator states,
scatter-gather differentials, and per-shard durable recovery.

``TestRandomisedDifferential`` is scaled by ``REPRO_DIFF_SCALE`` (the
nightly CI job sweeps it at 20x) and pins the central claim: a
:class:`~repro.store.ShardedCollection` is an *execution strategy* --
find/aggregate/update results are identical to the single-collection
planner path, document for document and row for row.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.errors import DocumentRejectedError, StorageFormatError, StoreError
from repro.mongo.aggregate import compile_pipeline
from repro.query.stages import ACCUMULATORS
from repro.store import (
    ShardedCollection,
    shard_name,
    shard_of,
)
from repro.store.fsck import repair, verify
from repro.workloads import people_collection
from repro import api

_SCALE = int(os.environ.get("REPRO_DIFF_SCALE", "1"))

PEOPLE = people_collection(240, seed=41)


@pytest.fixture(scope="module")
def single():
    return api.collection(people_collection(240, seed=41))


@pytest.fixture(scope="module")
def sharded():
    collection = api.collection(PEOPLE, shards=3, parallel=False)
    yield collection
    collection.close()


# ---------------------------------------------------------------------------
# Accumulator merge contract: merge(partials) == accumulate(whole).
# ---------------------------------------------------------------------------


class TestAccumulatorMerge:
    @pytest.mark.parametrize("name", sorted(ACCUMULATORS))
    def test_merge_of_random_splits_equals_whole(self, name):
        """Any interleaved split of a ranked stream folds back to the
        undivided fold (integer streams: merge reassociates sums)."""
        factory = ACCUMULATORS[name]
        rng = random.Random(f"merge-{name}")
        for _ in range(25 * _SCALE):
            ranked = [
                (rank, rng.randrange(-50, 50))
                for rank in range(rng.randrange(0, 30))
            ]
            whole = factory()
            for rank, value in ranked:
                whole.add_ranked(value, rank)
            shuffled = ranked[:]
            rng.shuffle(shuffled)
            pieces = rng.randrange(1, 5)
            partials = []
            for index in range(pieces):
                part = factory()
                for rank, value in shuffled[index::pieces]:
                    part.add_ranked(value, rank)
                partials.append(part.partial())
            assert factory.merge(partials).result() == whole.result(), name
            # A single partial round-trips unchanged.
            merged = factory.merge([whole.partial()])
            assert merged.result() == whole.result(), name

    def test_avg_partial_is_the_sum_count_pair(self):
        """Averages of averages are wrong on uneven splits; the
        partial must be the (sum, count) pair."""
        avg = ACCUMULATORS["$avg"]
        acc = avg()
        for value in (10, 20, 40):
            acc.add(value)
        assert acc.partial() == (70, 3)
        assert avg.merge([(70, 3), (30, 1)]).result() == 25

    def test_push_merge_restores_global_rank_order(self):
        """$push merges by rank, not by partial concatenation order."""
        push = ACCUMULATORS["$push"]
        left, right = push(), push()
        left.add_ranked("r0", (0, 0))
        left.add_ranked("r3", (3, 0))
        right.add_ranked("r1", (1, 0))
        right.add_ranked("r2", (2, 0))
        merged = push.merge([right.partial(), left.partial()])
        assert merged.result() == ["r0", "r1", "r2", "r3"]

    def test_min_max_encode_missing_without_the_sentinel(self):
        """An empty fold exports (), not the MISSING singleton (whose
        identity does not survive pickling across the pool)."""
        for name in ("$min", "$max"):
            factory = ACCUMULATORS[name]
            assert factory().partial() == ()
            seen = factory()
            seen.add(4)
            assert factory.merge([(), seen.partial(), ()]).result() == 4
            assert factory.merge([(), ()]).result() is None


# ---------------------------------------------------------------------------
# Routing invariants.
# ---------------------------------------------------------------------------


class TestShardRouting:
    def test_every_id_maps_to_exactly_one_shard(self):
        for count in (1, 2, 3, 4, 7):
            for doc_id in range(500):
                owners = [
                    index
                    for index in range(count)
                    if shard_of(doc_id, count) == index
                ]
                assert len(owners) == 1
                assert 0 <= owners[0] < count

    def test_shards_partition_the_collection(self, sharded):
        """Per-shard id sets are disjoint and union to the globals."""
        shards = sharded.engine.shards
        assert shards is not None  # serial mode exposes them
        per_shard = [set(shard.doc_ids()) for shard in shards]
        for index, ids in enumerate(per_shard):
            assert all(shard_of(i, sharded.shard_count) == index for i in ids)
        union = set().union(*per_shard)
        assert sorted(union) == sharded.doc_ids()
        assert sum(len(ids) for ids in per_shard) == len(union)

    def test_routed_point_ops_hit_the_owner(self, sharded):
        for doc_id in (0, 1, 2, 5, 100):
            assert doc_id in sharded
            assert sharded.get_value(doc_id) == PEOPLE[doc_id]
        assert -1 not in sharded
        assert len(PEOPLE) + 10 not in sharded

    def test_insert_ids_are_global_and_dense(self):
        with api.collection(shards=4, parallel=False) as fleet:
            ids = fleet.insert_many([{"n": index} for index in range(10)])
            assert ids == list(range(10))
            assert fleet.insert({"n": 10}) == 10
            removed = fleet.remove(3)
            assert removed == {"n": 3}
            # Ids are never reused, matching Collection semantics.
            assert fleet.insert({"n": 11}) == 11
            assert fleet.doc_ids() == [0, 1, 2, 4, 5, 6, 7, 8, 9, 10, 11]

    def test_schema_rejection_leaves_every_shard_untouched(self):
        schema = {
            "type": "object",
            "required": ["n"],
            "properties": {"n": {"type": "number"}},
        }
        fleet = ShardedCollection(shards=3, schema=schema, parallel=False)
        try:
            with pytest.raises(DocumentRejectedError):
                fleet.insert_many([{"n": 1}, {"n": 2}, {"bad": "doc"}])
            assert len(fleet) == 0
            assert fleet.doc_ids() == []
        finally:
            fleet.close()


# ---------------------------------------------------------------------------
# Scatter-gather differentials (nightly: REPRO_DIFF_SCALE=20).
# ---------------------------------------------------------------------------

FILTERS = [
    {},
    {"age": {"$gt": 50}},
    {"address.city": "Talca"},
    {"name.first": "Sue"},
    {"age": {"$gte": 30, "$lt": 70}},
    {"hobbies": "chess"},
    {"$or": [{"age": {"$lt": 25}}, {"age": {"$gt": 80}}]},
    {"$and": [{"age": {"$gt": 25}}, {"name.last": "Chen"}]},
    {"name.middle": {"$exists": False}},
    {"age": {"$in": [30, 40, 50]}},
]


def _random_pipeline(rng: random.Random) -> list:
    stages = []
    if rng.random() < 0.8:
        stages.append({"$match": rng.choice(FILTERS)})
    stages.extend(
        rng.sample(
            [
                {"$unwind": "$hobbies"},
                {"$project": {"name.first": 1, "age": 1, "hobbies": 1}},
                {"$sort": {"age": -1, "id": 1}},
                {
                    "$group": {
                        "_id": "$name.first",
                        "n": {"$sum": 1},
                        "avg": {"$avg": "$age"},
                        "oldest": {"$max": "$age"},
                        "youngest": {"$min": "$age"},
                        "ages": {"$push": "$age"},
                    }
                },
                {"$skip": rng.randrange(0, 5)},
                {"$limit": rng.randrange(1, 40)},
            ],
            k=rng.randrange(1, 4),
        )
    )
    if rng.random() < 0.2:
        stages.append({"$count": "rows"})
    return stages


class TestRandomisedDifferential:
    def test_sharded_aggregate_equals_single(self, single, sharded):
        rng = random.Random(4242)
        for _ in range(60 * _SCALE):
            pipeline = _random_pipeline(rng)
            compiled = compile_pipeline(pipeline)
            assert compiled.execute(sharded) == compiled.execute(single), pipeline

    def test_sharded_find_equals_single(self, single, sharded):
        from repro.query import compile_mongo_find, planner

        for filter_doc in FILTERS:
            query = compile_mongo_find(filter_doc)
            expected_ids = planner.match_ids(single, query)
            assert sharded.match_ids(filter_doc) == expected_ids, filter_doc
            assert sharded.count(filter_doc) == len(expected_ids)
            assert sharded.find(filter_doc) == [
                single.get(doc_id).to_value() for doc_id in expected_ids
            ], filter_doc

    def test_sharded_updates_equal_single(self):
        updates = [
            ({"age": {"$gt": 60}}, {"$inc": {"age": 1}}),
            ({"name.first": "Sue"}, {"$set": {"vip": 1}}),
            ({"address.city": "Talca"}, {"$unset": {"hobbies": ""}}),
            ({"age": {"$lt": 25}}, {"$mul": {"age": 2}}),
            ({"hobbies": "chess"}, {"$push": {"hobbies": "go"}}),
            ({"name.last": "Chen"}, {"$rename": {"age": "years"}}),
        ]
        reference = api.collection(PEOPLE)
        with api.collection(PEOPLE, shards=3, parallel=False) as fleet:
            for filter_doc, update_doc in updates:
                mine = fleet.update_many(filter_doc, update_doc)
                theirs = reference.update_many(filter_doc, update_doc)
                assert mine.matched_count == theirs.matched_count
                assert mine.modified_count == theirs.modified_count
            assert [value for _, value in fleet.values()] == [
                tree.to_value() for _, tree in reference.documents()
            ]

    def test_sharded_update_one_routes_to_global_first_match(self):
        reference = api.collection(PEOPLE)
        with api.collection(PEOPLE, shards=4, parallel=False) as fleet:
            for filter_doc in ({"age": {"$gt": 40}}, {"name.first": "Sue"}):
                mine = fleet.update_one(filter_doc, {"$inc": {"age": 1}})
                theirs = reference.update_one(filter_doc, {"$inc": {"age": 1}})
                assert (mine.matched_count, mine.modified_count) == (
                    theirs.matched_count,
                    theirs.modified_count,
                )
            assert [value for _, value in fleet.values()] == [
                tree.to_value() for _, tree in reference.documents()
            ]

    def test_sharded_upsert_assigns_the_same_global_id(self):
        reference = api.collection(PEOPLE[:10])
        with api.collection(PEOPLE[:10], shards=3, parallel=False) as fleet:
            mine = fleet.update_many(
                {"name.first": "Nobody"}, {"$set": {"age": 1}}, upsert=True
            )
            theirs = reference.update_many(
                {"name.first": "Nobody"}, {"$set": {"age": 1}}, upsert=True
            )
            assert mine.upserted_id == theirs.upserted_id == 10
            assert fleet.get_value(10) == reference.get(10).to_value()

    def test_replace_one_matches_single_semantics(self):
        reference = api.collection(PEOPLE[:30])
        with api.collection(PEOPLE[:30], shards=3, parallel=False) as fleet:
            replacement = {"name": {"first": "New"}, "age": 1}
            mine = fleet.replace_one({"age": {"$gt": 30}}, replacement)
            theirs = reference.replace_one({"age": {"$gt": 30}}, replacement)
            assert mine.matched_count == theirs.matched_count == 1
            assert [value for _, value in fleet.values()] == [
                tree.to_value() for _, tree in reference.documents()
            ]


# ---------------------------------------------------------------------------
# Explain: per-shard pruning stats and merge strategies.
# ---------------------------------------------------------------------------


class TestShardedExplain:
    def test_group_pipeline_reports_per_shard_stats(self, single, sharded):
        pipeline = [
            {"$match": {"address.city": "Talca"}},
            {"$group": {"_id": "$name.first", "n": {"$count": {}}}},
        ]
        report = sharded.explain_aggregate(pipeline)
        assert report.merge == "group-merge"
        assert len(report.shards) == 3
        assert report.total == len(PEOPLE)
        assert sum(shard.total for shard in report.shards) == report.total
        assert sum(shard.scanned for shard in report.shards) == report.scanned
        assert all(shard.used_indexes for shard in report.shards)
        assert all(
            shard.pruned == shard.total - shard.scanned
            for shard in report.shards
        )
        flat = compile_pipeline(pipeline).explain(single)
        assert report.results == flat.results

    def test_merge_strategies_by_boundary_stage(self, sharded):
        cases = [
            ([{"$sort": {"age": 1, "id": 1}}, {"$limit": 5}], "sort-merge"),
            ([{"$count": "rows"}], "count-sum"),
            ([{"$project": {"age": 1}}, {"$limit": 3}], "stream"),
            ([{"$group": {"_id": "$age"}}], "group-merge"),
        ]
        for pipeline, strategy in cases:
            assert sharded.explain_aggregate(pipeline).merge == strategy

    def test_unsharded_explain_has_no_shard_section(self, single):
        report = compile_pipeline([{"$limit": 3}]).explain(single)
        assert report.shards == ()
        assert report.merge is None


# ---------------------------------------------------------------------------
# Durable shards: independent recovery, fsck coverage, fixed layout.
# ---------------------------------------------------------------------------


class TestDurableSharded:
    def _open(self, path, **kwargs):
        kwargs.setdefault("parallel", False)
        return ShardedCollection(PEOPLE[:60], shards=4, path=path, **kwargs)

    def test_reopen_recovers_every_shard_independently(self, tmp_path):
        path = str(tmp_path / "fleet")
        fleet = self._open(path)
        fleet.update_many({"age": {"$gt": 50}}, {"$inc": {"age": 1}})
        expected = list(fleet.values())
        fleet.close()
        for index in range(4):
            assert (tmp_path / "fleet" / f"{shard_name(index)}.wal").exists()
        reopened = ShardedCollection(path=path, parallel=False)
        try:
            assert reopened.shard_count == 4  # adopted from sharding.json
            assert list(reopened.values()) == expected
        finally:
            reopened.close()

    def test_fsck_verifies_and_repairs_all_shards(self, tmp_path):
        path = str(tmp_path / "fleet")
        self._open(path).close()
        report = verify(path)
        assert report.ok
        names = {check.name for check in report.collections}
        assert names == {shard_name(index) for index in range(4)}
        repaired = repair(path)
        assert repaired.ok
        assert not repaired.actions  # nothing to fix on a clean fleet

    def test_compact_checkpoints_every_shard(self, tmp_path):
        path = str(tmp_path / "fleet")
        fleet = self._open(path)
        try:
            reports = fleet.compact()
            assert len(reports) == 4
            assert all(report is not None for report in reports)
        finally:
            fleet.close()
        for index in range(4):
            snapshot = tmp_path / "fleet" / f"{shard_name(index)}.snapshot.json"
            assert snapshot.exists()

    def test_rebalance_is_refused(self, tmp_path):
        path = str(tmp_path / "fleet")
        self._open(path).close()
        with pytest.raises(StorageFormatError, match="rebalancing"):
            ShardedCollection(path=path, shards=8, parallel=False)

    def test_unrecognised_meta_is_refused(self, tmp_path):
        path = tmp_path / "fleet"
        self._open(str(path)).close()
        meta = path / "sharding.json"
        meta.write_text('{"format": "someone-elses", "version": 1, "shards": 4}')
        with pytest.raises(StorageFormatError):
            ShardedCollection(path=str(path), parallel=False)


# ---------------------------------------------------------------------------
# The worker pool: parallel execution must be invisible.
# ---------------------------------------------------------------------------


class TestWorkerPool:
    PIPELINES = [
        [
            {"$match": {"age": {"$gt": 40}}},
            {"$group": {"_id": "$address.city", "n": {"$count": {}}}},
            {"$sort": {"n": -1, "_id": 1}},
        ],
        [{"$sort": {"age": 1, "id": 1}}, {"$skip": 3}, {"$limit": 7}],
        [{"$unwind": "$hobbies"}, {"$count": "rows"}],
    ]

    def _assert_equivalent(self, start_method):
        fleet = ShardedCollection(
            PEOPLE[:120],
            shards=2,
            parallel=True,
            start_method=start_method,
        )
        try:
            if not fleet.parallel:
                pytest.skip(f"no usable {start_method or 'default'} pool")
            reference = api.collection(PEOPLE[:120])
            for pipeline in self.PIPELINES:
                compiled = compile_pipeline(pipeline)
                assert compiled.execute(fleet) == compiled.execute(reference)
            result = fleet.update_many({"age": {"$gt": 40}}, {"$inc": {"age": 1}})
            assert result.matched_count > 0
            assert all(health.ok for health in fleet.health)
        finally:
            fleet.close()

    def test_parallel_matches_serial_results(self):
        self._assert_equivalent(None)

    def test_spawn_start_method_is_supported(self):
        self._assert_equivalent("spawn")

    def test_worker_errors_propagate(self):
        fleet = ShardedCollection(PEOPLE[:20], shards=2, parallel=True)
        try:
            with pytest.raises(StoreError):
                fleet.remove(999)  # no such document on the owning shard
            # The pool survives a raised per-shard error.
            assert len(fleet) == 20
        finally:
            fleet.close()

    def test_single_shard_defaults_to_serial(self):
        with ShardedCollection(PEOPLE[:10], shards=1) as fleet:
            assert not fleet.parallel
            assert fleet.shard_count == 1
            assert fleet.aggregate([{"$count": "n"}]) == [{"n": 10}]
