"""The command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro import api


@pytest.fixture
def doc_file(tmp_path):
    path = tmp_path / "doc.json"
    path.write_text(
        json.dumps(
            {"name": {"first": "John"}, "age": 32,
             "hobbies": ["fishing", "yoga"]}
        )
    )
    return str(path)


@pytest.fixture
def collection_file(tmp_path):
    path = tmp_path / "people.json"
    path.write_text(
        json.dumps(
            [
                {"name": "Sue", "age": 35},
                {"name": "Bob", "age": 28},
            ]
        )
    )
    return str(path)


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.json"
    path.write_text(
        json.dumps(
            {
                "type": "object",
                "required": ["name"],
                "properties": {"age": {"type": "number", "maximum": 120}},
            }
        )
    )
    return str(path)


class TestQuery:
    def test_jnl_true(self, doc_file, capsys):
        assert main(["query", doc_file, "--jnl", "has(.name.first)"]) == 0
        assert "name" in capsys.readouterr().out

    def test_jnl_false(self, doc_file):
        assert main(["query", doc_file, "--jnl", "has(.missing)"]) == 1

    def test_jsonpath(self, doc_file, capsys):
        assert main(["query", doc_file, "--jsonpath", "$.hobbies[*]"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == ['"fishing"', '"yoga"']

    def test_path_with_node_ids(self, doc_file, capsys):
        assert main(
            ["query", doc_file, "--path", ".hobbies[0]", "--node-ids"]
        ) == 0
        assert capsys.readouterr().out.strip().isdigit()

    def test_parse_error_exit_code(self, doc_file):
        assert main(["query", doc_file, "--jnl", "has("]) == 2

    def test_missing_file(self):
        assert main(["query", "/nope.json", "--jnl", "true"]) == 2


class TestValidate:
    def test_valid(self, doc_file, schema_file, capsys):
        assert main(["validate", doc_file, "--schema", schema_file]) == 0
        assert capsys.readouterr().out.strip() == "valid"

    def test_invalid(self, tmp_path, schema_file, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"age": 200, "name": "x"}')
        assert main(["validate", str(bad), "--schema", schema_file]) == 1
        assert capsys.readouterr().out.strip() == "invalid"

    def test_streaming_mode(self, doc_file, schema_file, capsys):
        assert main(
            ["validate", doc_file, "--schema", schema_file, "--streaming"]
        ) == 0
        assert capsys.readouterr().out.strip() == "valid"

    def test_corpus_all_valid(self, tmp_path, schema_file, capsys):
        corpus = tmp_path / "corpus.json"
        corpus.write_text(
            json.dumps([{"name": "a", "age": 10}, {"name": "b"}])
        )
        assert main(
            ["validate", str(corpus), "--schema", schema_file, "--corpus"]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == ["0: valid", "1: valid"]

    def test_corpus_with_invalid_member(self, tmp_path, schema_file, capsys):
        corpus = tmp_path / "corpus.json"
        corpus.write_text(
            json.dumps([{"name": "a"}, {"name": "b", "age": 200}])
        )
        assert main(
            ["validate", str(corpus), "--schema", schema_file, "--corpus"]
        ) == 1
        out = capsys.readouterr().out.splitlines()
        assert out == ["0: valid", "1: invalid"]

    def test_corpus_requires_array(self, doc_file, schema_file):
        assert main(
            ["validate", doc_file, "--schema", schema_file, "--corpus"]
        ) == 2

    def test_corpus_streaming_conflict(self, doc_file, schema_file):
        assert main(
            ["validate", doc_file, "--schema", schema_file,
             "--corpus", "--streaming"]
        ) == 2


class TestFind:
    def test_filter(self, collection_file, capsys):
        assert main(
            ["find", collection_file, "--filter", '{"age": {"$gt": 30}}']
        ) == 0
        out = capsys.readouterr().out
        assert "Sue" in out and "Bob" not in out

    def test_projection(self, collection_file, capsys):
        assert main(
            ["find", collection_file, "--filter", "{}",
             "--project", '{"name": 1}']
        ) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert lines == [{"name": "Sue"}, {"name": "Bob"}]

    def test_no_match_exit_code(self, collection_file):
        assert main(
            ["find", collection_file, "--filter", '{"age": {"$gt": 99}}']
        ) == 1

    def test_non_array_collection(self, doc_file):
        assert main(["find", doc_file, "--filter", "{}"]) == 2


class TestSat:
    def test_jsl_sat_with_witness(self, capsys):
        assert main(["sat", "--jsl", "some(.a, number and min(4))"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("satisfiable")
        witness = json.loads(out.splitlines()[1])
        assert witness["a"] > 4

    def test_jsl_unsat(self, capsys):
        assert main(["sat", "--jsl", "string and number", "--quiet"]) == 1
        assert capsys.readouterr().out.strip() == "unsatisfiable"

    def test_jnl_sat(self, capsys):
        assert main(["sat", "--jnl", "has(.a[1])", "--quiet"]) == 0

    def test_schema_sat(self, tmp_path, capsys):
        broken = tmp_path / "broken.json"
        broken.write_text(
            json.dumps(
                {"allOf": [{"type": "number", "minimum": 9},
                           {"type": "number", "maximum": 3}]}
            )
        )
        assert main(["sat", "--schema", str(broken)]) == 1

    def test_recursive_jsl_program(self, capsys):
        program = (
            "def g := value(\"end\") or some(.next, $g); some(.next, $g)"
        )
        assert main(["sat", "--jsl", program, "--quiet"]) == 0


@pytest.fixture
def jsonl_file(tmp_path):
    path = tmp_path / "people.jsonl"
    path.write_text(
        "\n".join(
            json.dumps(doc)
            for doc in [
                {"name": "Sue", "age": 35, "hobbies": ["chess", "yoga"]},
                {"name": "Bob", "age": 28, "hobbies": ["chess"]},
                {"name": "Ana", "age": 61},
                {"name": "Li", "age": 35, "hobbies": []},
            ]
        )
        + "\n"
    )
    return str(path)


class TestAggregate:
    def test_pipeline_over_jsonl_collection(self, jsonl_file, capsys):
        pipeline = json.dumps(
            [
                {"$match": {"age": {"$gt": 30}}},
                {"$group": {"_id": None, "n": {"$sum": 1}}},
            ]
        )
        assert main(
            ["aggregate", "--collection", jsonl_file, "--pipeline", pipeline]
        ) == 0
        out = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert out == [{"_id": None, "n": 3}]

    def test_pipeline_over_array_file(self, collection_file, capsys):
        pipeline = json.dumps([{"$project": {"name": 1}}, {"$sort": {"name": 1}}])
        assert main(
            ["aggregate", collection_file, "--pipeline", pipeline]
        ) == 0
        out = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert out == [{"name": "Bob"}, {"name": "Sue"}]

    def test_unwind_skips_missing_and_passes_scalars(self, jsonl_file, capsys):
        pipeline = json.dumps(
            [{"$unwind": "$hobbies"}, {"$group": {"_id": "$hobbies", "n": {"$sum": 1}}}]
        )
        assert main(
            ["aggregate", "--collection", jsonl_file, "--pipeline", pipeline]
        ) == 0
        out = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        # Ana (missing) and Li (empty array) contribute no rows.
        assert out == [{"_id": "chess", "n": 2}, {"_id": "yoga", "n": 1}]

    def test_unwind_on_non_array_path(self, jsonl_file, capsys):
        pipeline = json.dumps([{"$unwind": "$name"}, {"$count": "rows"}])
        assert main(
            ["aggregate", "--collection", jsonl_file, "--pipeline", pipeline]
        ) == 0
        out = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert out == [{"rows": 4}]  # scalars pass through unchanged

    def test_explain_reports_index_pruning(self, jsonl_file, capsys):
        pipeline = json.dumps(
            [{"$match": {"name": "Sue"}}, {"$sort": {"age": 1}}]
        )
        assert main(
            ["aggregate", "--collection", jsonl_file, "--pipeline", pipeline,
             "--explain"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["format"] == "repro-explain"
        assert report["kind"] == "aggregate"
        assert report["stages"][0] == {"op": "$match", "mode": "index-pruned"}
        assert report["stages"][1] == {"op": "$sort", "mode": "materialised"}
        assert report["total"] == 4 and report["candidates"] == 1

    def test_empty_collection(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(
            ["aggregate", "--collection", str(empty), "--pipeline",
             '[{"$count": "n"}]']
        ) == 1

    def test_no_results_exit_code(self, jsonl_file):
        assert main(
            ["aggregate", "--collection", jsonl_file, "--pipeline",
             '[{"$match": {"age": {"$gt": 99}}}]']
        ) == 1

    def test_pipeline_parse_error(self, jsonl_file, capsys):
        assert main(
            ["aggregate", "--collection", jsonl_file, "--pipeline",
             '[{"$frobnicate": 1}]']
        ) == 2
        assert "unsupported pipeline stage" in capsys.readouterr().err

    def test_pipeline_invalid_json(self, jsonl_file):
        assert main(
            ["aggregate", "--collection", jsonl_file, "--pipeline", "not-json"]
        ) == 2

    def test_pipeline_must_be_an_array(self, jsonl_file, capsys):
        assert main(
            ["aggregate", "--collection", jsonl_file, "--pipeline",
             '{"$match": {}}']
        ) == 2
        assert "JSON array" in capsys.readouterr().err

    def test_requires_exactly_one_input(self, collection_file, jsonl_file):
        assert main(["aggregate", "--pipeline", "[]"]) == 2
        assert main(
            ["aggregate", collection_file, "--collection", jsonl_file,
             "--pipeline", "[]"]
        ) == 2

    def test_group_accumulator_error(self, jsonl_file, capsys):
        assert main(
            ["aggregate", "--collection", jsonl_file, "--pipeline",
             '[{"$group": {"_id": null, "n": {"$bogus": 1}}}]']
        ) == 2
        assert "unsupported accumulator" in capsys.readouterr().err


class TestUpdate:
    def test_update_over_jsonl_collection(self, jsonl_file, capsys):
        assert main(
            ["update", "--collection", jsonl_file,
             "--filter", '{"age": {"$gt": 30}}',
             "--update", '{"$inc": {"age": 1}}']
        ) == 0
        assert capsys.readouterr().out.strip() == "matched=3 modified=3"

    def test_update_writes_back_with_out(self, jsonl_file, tmp_path, capsys):
        out_file = tmp_path / "updated.jsonl"
        assert main(
            ["update", "--collection", jsonl_file,
             "--filter", '{"name": "Sue"}',
             "--update", '{"$set": {"age": 36}, "$push": {"hobbies": "go"}}',
             "--out", str(out_file)]
        ) == 0
        rows = [json.loads(line) for line in out_file.read_text().splitlines()]
        assert len(rows) == 4
        assert rows[0]["age"] == 36
        assert rows[0]["hobbies"][-1] == "go"
        assert rows[1]["age"] == 28  # untouched

    def test_update_one_touches_a_single_document(self, jsonl_file, capsys):
        assert main(
            ["update", "--collection", jsonl_file,
             "--filter", '{"age": 35}',
             "--update", '{"$inc": {"age": 1}}', "--one"]
        ) == 0
        assert capsys.readouterr().out.strip() == "matched=1 modified=1"

    def test_update_over_array_file(self, collection_file, capsys):
        assert main(
            ["update", collection_file,
             "--filter", "{}", "--update", '{"$set": {"seen": "y"}}']
        ) == 0
        assert capsys.readouterr().out.strip() == "matched=2 modified=2"

    def test_upsert_reports_the_new_id(self, jsonl_file, capsys):
        assert main(
            ["update", "--collection", jsonl_file,
             "--filter", '{"name": "Zoe"}',
             "--update", '{"$set": {"age": 1}}', "--upsert"]
        ) == 0
        assert (
            capsys.readouterr().out.strip()
            == "matched=0 modified=0 upserted_id=4"
        )

    def test_explain_reports_pruning_and_touched_indexes(
        self, jsonl_file, capsys
    ):
        assert main(
            ["update", "--collection", jsonl_file,
             "--filter", '{"name": "Sue"}',
             "--update", '{"$inc": {"age": 1}}', "--explain"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["format"] == "repro-explain"
        assert report["kind"] == "update"
        assert report["total"] == 4 and report["candidates"] == 1
        assert report["modified"] == 1
        assert report["total"] - report["candidates"] == 3  # pruned
        assert "eq" in report["postings"]

    def test_explain_respects_one(self, jsonl_file, capsys):
        assert main(
            ["update", "--collection", jsonl_file,
             "--filter", '{"age": {"$gt": 20}}',
             "--update", '{"$inc": {"age": 1}}', "--one", "--explain"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["matched"] == 1 and report["modified"] == 1

    def test_no_match_exit_code(self, jsonl_file):
        assert main(
            ["update", "--collection", jsonl_file,
             "--filter", '{"name": "Zoe"}', "--update", '{"$inc": {"age": 1}}']
        ) == 1

    def test_explain_excludes_upsert_and_out(self, jsonl_file, capsys):
        assert main(
            ["update", "--collection", jsonl_file, "--filter", "{}",
             "--update", '{"$inc": {"age": 1}}', "--explain", "--upsert"]
        ) == 2
        assert "dry run" in capsys.readouterr().err

    def test_update_parse_error(self, jsonl_file, capsys):
        assert main(
            ["update", "--collection", jsonl_file, "--filter", "{}",
             "--update", '{"$frobnicate": {"a": 1}}']
        ) == 2
        assert "unsupported update operator" in capsys.readouterr().err

    def test_requires_exactly_one_input(self, collection_file, jsonl_file):
        assert main(["update", "--update", "{}"]) == 2
        assert main(
            ["update", collection_file, "--collection", jsonl_file,
             "--update", '{"$inc": {"age": 1}}']
        ) == 2


class TestDatabaseCLI:
    @pytest.fixture
    def db_dir(self, tmp_path):
        from repro import api

        path = str(tmp_path / "db")
        with api.connect(path) as db:
            db.collection(
                documents=[
                    {"name": "Sue", "age": 35},
                    {"name": "Bob", "age": 28},
                ]
            )
        return path

    def test_find_over_db(self, db_dir, capsys):
        assert main(
            ["find", "--db", db_dir, "--filter", '{"age": {"$gt": 30}}']
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("0\t")
        assert "Sue" in out and "Bob" not in out

    def test_update_over_db_is_durable(self, db_dir, capsys):
        assert main(
            ["update", "--db", db_dir,
             "--filter", '{"name": "Bob"}',
             "--update", '{"$inc": {"age": 10}}']
        ) == 0
        assert capsys.readouterr().out.strip() == "matched=1 modified=1"
        # A separate invocation (fresh recovery) sees the commit.
        assert main(
            ["find", "--db", db_dir, "--filter", '{"age": 38}']
        ) == 0
        assert "Bob" in capsys.readouterr().out

    def test_query_and_aggregate_over_db(self, db_dir, capsys):
        assert main(["query", "--db", db_dir, "--jnl", "has(.name)"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 2
        assert main(
            ["aggregate", "--db", db_dir,
             "--pipeline",
             '[{"$group": {"_id": null, "total": {"$sum": "$age"}}}]']
        ) == 0
        assert json.loads(capsys.readouterr().out) == {
            "_id": None,
            "total": 63,
        }

    def test_db_compact(self, db_dir, capsys):
        import os

        assert main(["db", "compact", db_dir]) == 0
        out = capsys.readouterr().out
        assert out.startswith("main\twal_records=")
        # The WAL was folded into the snapshot (magic bytes only).
        assert os.path.getsize(os.path.join(db_dir, "main.wal")) == 8
        assert main(["find", "--db", db_dir, "--filter", "{}"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 2

    def test_db_is_exclusive_with_other_sources(
        self, db_dir, collection_file, capsys
    ):
        assert main(
            ["find", "--db", db_dir, "--collection", collection_file]
        ) == 2
        assert "--db" in capsys.readouterr().err


class TestShards:
    def test_sharded_find_matches_unsharded(self, jsonl_file, capsys):
        args = [
            "find",
            "--collection",
            jsonl_file,
            "--filter",
            '{"age": {"$gt": 30}}',
        ]
        assert main(args) == 0
        expected = capsys.readouterr().out
        assert main(args + ["--shards", "3"]) == 0
        assert capsys.readouterr().out == expected

    def test_sharded_aggregate_matches_unsharded(self, jsonl_file, capsys):
        pipeline = json.dumps(
            [
                {"$match": {"age": {"$gt": 30}}},
                {"$group": {"_id": None, "n": {"$sum": 1}}},
            ]
        )
        args = ["aggregate", "--collection", jsonl_file, "--pipeline", pipeline]
        assert main(args) == 0
        expected = capsys.readouterr().out
        assert main(args + ["--shards", "2"]) == 0
        assert capsys.readouterr().out == expected

    def test_sharded_explain_reports_per_shard_stats(self, jsonl_file, capsys):
        pipeline = json.dumps(
            [
                {"$match": {"age": {"$gt": 30}}},
                {"$group": {"_id": None, "n": {"$sum": 1}}},
            ]
        )
        assert main(
            [
                "aggregate",
                "--collection",
                jsonl_file,
                "--shards",
                "2",
                "--pipeline",
                pipeline,
                "--explain",
            ]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert [shard["shard"] for shard in report["shards"]] == [0, 1]
        assert report["merge"] == "group-merge"

    def test_sharded_update_writes_corpus(self, jsonl_file, tmp_path, capsys):
        out_file = str(tmp_path / "updated.jsonl")
        assert main(
            [
                "update",
                "--collection",
                jsonl_file,
                "--shards",
                "2",
                "--filter",
                '{"age": {"$gt": 30}}',
                "--update",
                '{"$inc": {"age": 1}}',
                "--out",
                out_file,
            ]
        ) == 0
        assert "matched=3 modified=3" in capsys.readouterr().out
        with open(out_file, encoding="utf-8") as handle:
            docs = [json.loads(line) for line in handle]
        assert [doc["age"] for doc in docs] == [36, 28, 62, 36]

    def test_sharded_update_explain_is_per_shard(self, jsonl_file, capsys):
        assert main(
            [
                "update",
                "--collection",
                jsonl_file,
                "--shards",
                "2",
                "--filter",
                '{"age": {"$gt": 30}}',
                "--update",
                '{"$inc": {"age": 1}}',
                "--explain",
            ]
        ) == 0
        reports = json.loads(capsys.readouterr().out)
        assert [report["shard"] for report in reports] == [0, 1]
        assert all(report["kind"] == "update" for report in reports)

    def test_shards_requires_collection(self, collection_file, capsys):
        assert main(
            ["find", collection_file, "--shards", "2", "--filter", "{}"]
        ) == 2
        assert "--shards requires --collection" in capsys.readouterr().err

    def test_shards_must_be_positive(self, jsonl_file, capsys):
        assert main(
            [
                "find",
                "--collection",
                jsonl_file,
                "--shards",
                "0",
                "--filter",
                "{}",
            ]
        ) == 2
        assert "at least 1" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# The uniform error contract: ``error:<TAB><code><TAB><message>`` on
# stderr, nonzero exit.
# ---------------------------------------------------------------------------


def error_line(capsys) -> tuple[str, str]:
    """Parse the single error line off stderr; returns (code, message)."""
    err = capsys.readouterr().err.strip().splitlines()
    assert len(err) == 1, err
    marker, code, message = err[0].split("\t", 2)
    assert marker == "error:"
    return code, message


class TestErrorLines:
    def test_malformed_filter_names_the_argument(self, doc_file, capsys):
        assert main(["find", doc_file, "--filter", "{not json"]) == 2
        code, message = error_line(capsys)
        assert code == "parse.error"
        assert message.startswith("malformed --filter:")

    def test_malformed_pipeline_names_the_argument(self, doc_file, capsys):
        assert main(["aggregate", doc_file, "--pipeline", "[oops"]) == 2
        code, message = error_line(capsys)
        assert code == "parse.error"
        assert message.startswith("malformed --pipeline:")

    def test_usage_errors_carry_the_cli_code(self, doc_file, capsys):
        assert (
            main(
                ["find", doc_file, "--db", "somewhere", "--filter", "{}"]
            )
            == 2
        )
        code, _ = error_line(capsys)
        assert code == "cli.usage"

    def test_missing_file_is_an_os_error(self, capsys):
        assert main(["find", "/no/such/file.json", "--filter", "{}"]) == 2
        code, _ = error_line(capsys)
        assert code == "os.error"

    def test_library_errors_carry_their_wire_code(
        self, collection_file, capsys
    ):
        assert (
            main(
                [
                    "find",
                    collection_file,
                    "--filter",
                    '{"a": {"$bogus": 1}}',
                ]
            )
            == 2
        )
        code, message = error_line(capsys)
        assert code == "parse.error"
        assert "unsupported operator" in message


# ---------------------------------------------------------------------------
# serve + --remote: the CLI talking to a live server.
# ---------------------------------------------------------------------------


@pytest.fixture
def remote_server():
    import asyncio
    import threading

    from repro.server import ReproServer

    database = api.connect()
    database.collection(
        documents=[{"name": "Sue", "age": 35}, {"name": "Bob", "age": 28}]
    )
    server = ReproServer(database)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def runner() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    started.wait()
    host, port = server.address
    yield f"{host}:{port}"
    asyncio.run_coroutine_threadsafe(server.aclose(), loop).result(timeout=10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)
    loop.close()


class TestRemote:
    def test_remote_find(self, remote_server, capsys):
        assert (
            main(
                [
                    "find",
                    "--remote",
                    remote_server,
                    "--filter",
                    '{"age": {"$gt": 30}}',
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Sue" in out and "Bob" not in out

    def test_remote_aggregate(self, remote_server, capsys):
        assert (
            main(
                [
                    "aggregate",
                    "--remote",
                    remote_server,
                    "--pipeline",
                    '[{"$group": {"_id": null, "n": {"$sum": 1}}}]',
                ]
            )
            == 0
        )
        assert '"n": 2' in capsys.readouterr().out.replace("'", '"')

    def test_remote_update(self, remote_server, capsys):
        assert (
            main(
                [
                    "update",
                    "--remote",
                    remote_server,
                    "--filter",
                    '{"name": "Bob"}',
                    "--update",
                    '{"$inc": {"age": 1}}',
                ]
            )
            == 0
        )
        assert capsys.readouterr().out.strip() == "matched=1 modified=1"

    def test_remote_error_rehydrates_with_its_code(
        self, remote_server, capsys
    ):
        assert (
            main(
                [
                    "find",
                    "--remote",
                    remote_server,
                    "--filter",
                    '{"a": {"$bogus": 1}}',
                ]
            )
            == 2
        )
        code, message = error_line(capsys)
        assert code == "parse.error"
        assert "unsupported operator" in message

    def test_remote_excludes_other_sources(self, remote_server, capsys):
        assert (
            main(
                [
                    "find",
                    "--remote",
                    remote_server,
                    "--db",
                    "somewhere",
                    "--filter",
                    "{}",
                ]
            )
            == 2
        )
        code, _ = error_line(capsys)
        assert code == "cli.usage"

    def test_remote_refused_connection_is_an_os_error(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        _, port = probe.getsockname()
        probe.close()
        assert (
            main(
                [
                    "find",
                    "--remote",
                    f"127.0.0.1:{port}",
                    "--filter",
                    "{}",
                ]
            )
            == 2
        )
        code, _ = error_line(capsys)
        assert code == "os.error"


class TestServeCommand:
    def test_serve_round_trip(self, tmp_path):
        import re
        import subprocess
        import sys

        from repro.client import connect

        db_dir = str(tmp_path / "db")
        with api.connect(db_dir) as db:
            db.collection(documents=[{"name": "Sue", "age": 35}])
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.cli import main; "
                "sys.exit(main(sys.argv[1:]))",
                "serve",
                db_dir,
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            announce = process.stdout.readline()
            match = re.search(r"on ([\d.]+):(\d+)", announce)
            assert match, announce
            address = (match.group(1), int(match.group(2)))
            with connect(address) as remote:
                collection = remote.collection()
                assert collection.find({"name": "Sue"}) == [
                    {"name": "Sue", "age": 35}
                ]
                collection.insert({"name": "Ada", "age": 30})
                remote.shutdown()
            assert process.wait(timeout=10) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        # The write was group-committed before shutdown acknowledged.
        with api.connect(db_dir) as db:
            assert db.collection().count({"name": "Ada"}) == 1

    def test_serve_rejects_bad_port(self, capsys):
        assert main(["serve", "--port", "70000"]) == 2
        code, _ = error_line(capsys)
        assert code == "cli.usage"
