"""Fault injection: every storage failure mode, deterministically.

The :class:`~repro.store.faults.FaultyIO` adapter makes the durable
engine's failure semantics testable instead of aspirational:

* error-return faults (EIO, ENOSPC, short writes) mid-append and
  mid-checkpoint -- the failed frame is rolled back, the engine enters
  degraded read-only mode (writes raise
  :class:`~repro.errors.CollectionReadOnlyError`, reads keep
  answering), and reopening recovers exactly the acknowledged prefix;
* checkpoint failures at every step (temp fsync, rename, directory
  sync, WAL reset) -- the previous snapshot and WAL stay intact;
* the operation log proves ordering properties: every rename is made
  durable by a parent-directory fsync (the fix FaultyIO exists to
  regression-guard);
* the exhaustive crash-point sweep: a fixed workload is first counted
  (every ``open``/``write``/``flush``/``fsync``/``truncate``/
  ``replace``/``fsync_dir`` the engine performs), then re-run once per
  I/O operation with a :class:`~repro.store.faults.SimulatedCrash`
  planted at that operation.  The oracle: the reopened state is the
  acknowledged shadow state, or the shadow plus the single in-flight
  operation (a frame may fully land before the crash point fires) --
  never anything else, and never a lost acknowledged write.

The sweep multiplies its workload with ``REPRO_DIFF_SCALE`` (nightly
CI runs it at 20x); at scale 1 it is a ~2s smoke slice.
"""

from __future__ import annotations

import errno
import os

import pytest

from repro.errors import (
    CollectionReadOnlyError,
    ReproError,
    StorageIOError,
    StoreError,
)
from repro.store import (
    Collection,
    Database,
    DurableEngine,
    Fault,
    FaultPlan,
    FaultyIO,
    IOAdapter,
    RealIO,
    SimulatedCrash,
    WriteAheadLog,
)
from repro import api

_SCALE = int(os.environ.get("REPRO_DIFF_SCALE", "1"))


def durable(path, name="main", **kwargs):
    kwargs.setdefault("sync", "flush")
    documents = kwargs.pop("documents", ())
    engine = DurableEngine(os.fspath(path), name, **kwargs)
    return Collection(documents, engine=engine)


def values(collection: Collection) -> dict[int, object]:
    return {doc_id: tree.to_value() for doc_id, tree in collection.documents()}


class TestAdapterPlumbing:
    def test_real_io_is_the_default(self, tmp_path):
        engine = DurableEngine(str(tmp_path))
        assert isinstance(engine.io, RealIO)
        wal = WriteAheadLog(str(tmp_path / "x.wal"))
        assert isinstance(wal.io, IOAdapter)
        wal.close()

    def test_all_engine_io_routes_through_the_adapter(self, tmp_path):
        io = FaultyIO()
        collection = durable(tmp_path, io=io)
        collection.insert_many([{"a": 1}, {"a": 2}])
        collection.remove(0)
        collection.compact()
        collection.close()
        kinds = {op for op, _ in io.ops}
        # Every mediated operation kind shows up in a full lifecycle.
        assert {"open", "write", "flush", "fsync", "replace", "fsync_dir"} <= kinds
        assert io.counts["write"] > 0 and io.counts["replace"] >= 2

    def test_every_replace_is_followed_by_a_directory_sync(self, tmp_path):
        """The satellite fix: ``os.replace`` alone leaves the rename in
        the directory's page cache; checkpoint and WAL reset must both
        sync the parent directory afterwards."""
        io = FaultyIO()
        collection = durable(tmp_path, io=io)
        collection.insert_many([{"a": 1}])
        collection.compact()  # snapshot replace + WAL reset replace
        collection.close()
        kinds = [op for op, _ in io.ops]
        replaces = [i for i, op in enumerate(kinds) if op == "replace"]
        assert len(replaces) == 2
        for index in replaces:
            trailing = kinds[index + 1 :]
            assert "fsync_dir" in trailing
            # ...and before any further rename.
            next_replace = (
                trailing.index("replace")
                if "replace" in trailing
                else len(trailing)
            )
            assert trailing.index("fsync_dir") < next_replace

    def test_dropped_dir_sync_is_observable(self, tmp_path):
        """``drop_dir_sync`` silently swallows every directory sync --
        the simulation of the bug the fix closes -- without breaking
        the happy path (the data still lands; only the rename's
        power-loss durability is gone)."""
        io = FaultyIO(FaultPlan.drop_dir_sync())
        collection = durable(tmp_path, io=io)
        collection.insert_many([{"a": 1}])
        collection.compact()
        collection.close()
        assert io.counts["fsync_dir"] == 2  # attempted...
        assert not io.fired  # ...but a persistent skip never "fires out"
        reopened = durable(tmp_path)
        assert values(reopened) == {0: {"a": 1}}
        reopened.close()

    def test_arming_is_relative_to_setup(self, tmp_path):
        io = FaultyIO()
        collection = durable(tmp_path, io=io, sync="fsync")
        collection.insert_many([{"a": 1}])  # setup fsyncs happen here
        io.arm(FaultPlan.fail("fsync"))
        with pytest.raises(StorageIOError):
            collection.insert_many([{"a": 2}])
        assert len(io.fired) == 1


class TestTaxonomy:
    def test_storage_errors_are_store_errors(self):
        assert issubclass(StorageIOError, StoreError)
        assert issubclass(CollectionReadOnlyError, StoreError)
        assert issubclass(StoreError, ReproError)
        # A simulated crash is NOT an Exception: rollback handlers and
        # blanket ``except Exception`` must not be able to swallow it.
        assert issubclass(SimulatedCrash, BaseException)
        assert not issubclass(SimulatedCrash, Exception)

    def test_append_failure_chains_the_os_error(self, tmp_path):
        io = FaultyIO()
        collection = durable(tmp_path, io=io)
        io.arm(FaultPlan.fail("write", error=errno.EIO))
        with pytest.raises(StorageIOError) as excinfo:
            collection.insert_many([{"a": 1}])
        assert isinstance(excinfo.value.__cause__, OSError)
        assert excinfo.value.__cause__.errno == errno.EIO
        assert excinfo.value.rolled_back

    def test_read_only_error_chains_the_root_cause(self, tmp_path):
        io = FaultyIO()
        collection = durable(tmp_path, io=io)
        io.arm(FaultPlan.fail("write"))
        with pytest.raises(StorageIOError) as first:
            collection.insert_many([{"a": 1}])
        with pytest.raises(CollectionReadOnlyError) as second:
            collection.insert_many([{"a": 2}])
        assert second.value.__cause__ is first.value

    def test_unknown_fault_op_is_rejected(self):
        with pytest.raises(StoreError):
            Fault(op="rename")
        with pytest.raises(StoreError):
            Fault(mode="explode")


#: (fault factory, description) -- every way an append can fail.
APPEND_FAULTS = [
    pytest.param(lambda: FaultPlan.fail("write"), id="eio-write"),
    pytest.param(lambda: FaultPlan.fail("flush"), id="eio-flush"),
    pytest.param(
        lambda: FaultPlan.short_write(keep=5), id="short-write-torn"
    ),
    pytest.param(lambda: FaultPlan.enospc(after_bytes=10), id="enospc"),
]


class TestDegradedMode:
    @pytest.mark.parametrize("make_fault", APPEND_FAULTS)
    def test_failed_append_degrades_and_loses_nothing(
        self, tmp_path, make_fault
    ):
        io = FaultyIO()
        collection = durable(tmp_path, io=io)
        acked = [{"n": 1}, {"n": 2}]
        collection.insert_many(acked)
        io.arm(make_fault())
        with pytest.raises(StorageIOError):
            collection.insert_many([{"n": 3, "pad": "x" * 64}])
        # (a) degraded mode blocks further writes, with the cause chained
        health = collection.health
        assert health.degraded and not health.ok
        assert isinstance(health.error, StorageIOError)
        with pytest.raises(CollectionReadOnlyError):
            collection.insert_many([{"n": 4}])
        with pytest.raises(CollectionReadOnlyError):
            collection.remove(0)
        with pytest.raises(CollectionReadOnlyError):
            collection.compact()
        # (b) reads keep answering from memory
        assert values(collection) == {0: {"n": 1}, 1: {"n": 2}}
        assert collection.find({"n": 2}) == [{"n": 2}]
        assert len(collection) == 2
        collection.close()
        # (c) reopening recovers exactly the acknowledged prefix
        reopened = durable(tmp_path)
        assert values(reopened) == {0: {"n": 1}, 1: {"n": 2}}
        assert reopened.health.ok
        reopened.insert_many([{"n": 5}])  # healthy again
        reopened.close()

    @pytest.mark.parametrize("make_fault", APPEND_FAULTS)
    def test_pre_fault_snapshot_stays_loadable(self, tmp_path, make_fault):
        io = FaultyIO()
        collection = durable(tmp_path, io=io)
        collection.insert_many([{"n": 1}])
        collection.compact()  # durable snapshot covering LSN 1
        collection.insert_many([{"n": 2}])  # in the WAL only
        io.arm(make_fault())
        with pytest.raises(StorageIOError):
            collection.insert_many([{"n": 3, "pad": "y" * 64}])
        collection.close()
        reopened = durable(tmp_path)
        assert values(reopened) == {0: {"n": 1}, 1: {"n": 2}}
        reopened.close()

    def test_update_path_degrades_too(self, tmp_path):
        from repro.mongo import update_many

        io = FaultyIO()
        collection = durable(tmp_path, io=io, documents=[{"n": 1}])
        io.arm(FaultPlan.fail("write"))
        with pytest.raises(StorageIOError):
            update_many(collection, {}, {"$set": {"n": 9}})
        # the in-memory document is untouched (commit precedes apply)
        assert values(collection) == {0: {"n": 1}}
        with pytest.raises(CollectionReadOnlyError):
            update_many(collection, {}, {"$set": {"n": 10}})
        collection.close()


class TestCheckpointFailures:
    def _seeded(self, tmp_path, io):
        collection = durable(tmp_path, io=io)
        collection.insert_many([{"n": 1}, {"n": 2}])
        collection.compact()
        collection.insert_many([{"n": 3}])
        return collection

    @pytest.mark.parametrize(
        "fault_factory",
        [
            pytest.param(lambda: FaultPlan.fail("fsync"), id="temp-fsync"),
            pytest.param(lambda: FaultPlan.fail("write"), id="temp-write"),
            pytest.param(lambda: FaultPlan.fail("replace"), id="rename"),
            pytest.param(
                lambda: FaultPlan.fail("fsync_dir"), id="dir-sync"
            ),
        ],
    )
    def test_failed_checkpoint_leaves_old_state_intact(
        self, tmp_path, fault_factory
    ):
        io = FaultyIO()
        collection = self._seeded(tmp_path, io)
        snapshot_path = os.path.join(str(tmp_path), "main.snapshot.json")
        wal_path = os.path.join(str(tmp_path), "main.wal")
        old_snapshot = open(snapshot_path, "rb").read()
        old_wal = open(wal_path, "rb").read()
        io.arm(fault_factory())
        with pytest.raises(StorageIOError):
            collection.compact()
        assert collection.health.degraded
        with pytest.raises(CollectionReadOnlyError):
            collection.insert_many([{"n": 4}])
        collection.close()
        # The WAL is byte-identical; the snapshot is either untouched
        # (failure before the rename) or the fresher one (failure after
        # the rename commit point, e.g. the directory sync) -- never a
        # torn in-between.
        assert open(wal_path, "rb").read() == old_wal
        fresh_snapshot = open(snapshot_path, "rb").read()
        assert fresh_snapshot == old_snapshot or fault_factory().op in (
            "fsync_dir",
        )
        reopened = durable(tmp_path)
        assert values(reopened) == {0: {"n": 1}, 1: {"n": 2}, 2: {"n": 3}}
        reopened.close()

    def test_failed_wal_reset_keeps_consistency(self, tmp_path):
        """Failing the *second* rename (the WAL reset) leaves the new
        snapshot plus the old WAL: replay skips the covered records by
        LSN and recovery still lands on the acknowledged state."""
        io = FaultyIO()
        collection = self._seeded(tmp_path, io)
        io.arm(FaultPlan.fail("replace", nth=2))
        with pytest.raises(StorageIOError):
            collection.compact()
        assert collection.health.degraded
        collection.close()
        reopened = durable(tmp_path)
        assert values(reopened) == {0: {"n": 1}, 1: {"n": 2}, 2: {"n": 3}}
        reopened.close()

    def test_failed_auto_checkpoint_keeps_the_acknowledged_write(
        self, tmp_path
    ):
        """An auto-compaction failure must not surface through the
        insert that triggered it -- the insert is already durable in
        the WAL -- but the engine degrades for the *next* write."""
        io = FaultyIO()
        collection = durable(tmp_path, io=io, compact_threshold=3)
        collection.insert_many([{"n": 1}])
        collection.insert_many([{"n": 2}])
        io.arm(FaultPlan.fail("replace"))
        collection.insert_many([{"n": 3}])  # triggers auto-checkpoint: no raise
        assert values(collection) == {0: {"n": 1}, 1: {"n": 2}, 2: {"n": 3}}
        assert collection.health.degraded
        with pytest.raises(CollectionReadOnlyError):
            collection.insert_many([{"n": 4}])
        collection.close()
        reopened = durable(tmp_path)
        assert values(reopened) == {0: {"n": 1}, 1: {"n": 2}, 2: {"n": 3}}
        reopened.close()


class TestDatabaseWiring:
    def test_database_threads_the_adapter(self, tmp_path):
        io = FaultyIO()
        with api.connect(tmp_path, sync="flush", io=io) as db:
            db.collection("people").insert_many([{"n": 1}])
        assert io.counts["write"] > 0

    def test_database_health_reports_degradation(self, tmp_path):
        io = FaultyIO()
        db = Database(tmp_path, sync="flush", io=io)
        people = db.collection("people")
        pets = db.collection("pets")
        people.insert_many([{"n": 1}])
        io.arm(FaultPlan.fail("write"))
        with pytest.raises(StorageIOError):
            people.insert_many([{"n": 2, "pad": "z" * 32}])
        health = db.health()
        assert set(health) == {"people", "pets"}
        assert health["people"].degraded and not health["people"].ok
        assert health["pets"].ok
        assert "degraded" in repr(people.engine)
        pets.insert_many([{"n": 1}])  # other collections stay writable
        db.close()

    def test_memory_databases_are_always_healthy(self):
        db = Database()
        db.collection("anything").insert_many([{"n": 1}])
        assert all(h.ok for h in db.health().values())
        db.close()


class TestCrashSweep:
    """Exhaustive crash-point enumeration with an acknowledged-write
    oracle, per the robustness tentpole."""

    #: The workload: (op, payload) steps over one collection.  Batches
    #: vary in size, a compaction lands mid-stream (so crashes hit the
    #: snapshot rename / WAL reset too), and removes hit both snapshot
    #: and WAL-only documents.
    STEPS = [
        ("insert", [{"n": 0}, {"n": 1, "tags": ["a", "b"]}]),
        ("insert", [{"n": 2, "deep": {"k": [1, 2, 3]}}]),
        ("remove", 0),
        ("compact", None),
        ("insert", [{"n": 3}, {"n": 4}, {"n": 5, "s": "x" * 40}]),
        ("remove", 2),
        ("insert", [{"n": 6}]),
        ("compact", None),
        ("insert", [{"n": 7, "last": "yes"}]),
    ]

    def _run(self, directory, io):
        """Run the workload against ``directory``.

        Returns ``(acked, acked_plus_inflight, collection)``: the
        shadow of acknowledged writes, and the shadow including the op
        in flight when a crash fired (the two are equal when no data op
        was interrupted).
        """
        shadow: dict[int, object] = {}
        next_id = 0
        op = None
        before: dict[int, object] = {}
        collection = None
        try:
            collection = durable(directory, io=io)
            for op, payload in self.STEPS:
                before = dict(shadow)
                if op == "insert":
                    for value in payload:
                        shadow[next_id] = value
                        next_id += 1
                    collection.insert_many(payload)
                elif op == "remove":
                    del shadow[payload]
                    collection.remove(payload)
                else:
                    collection.compact()
            return dict(shadow), dict(shadow), collection
        except SimulatedCrash:
            after = dict(shadow)
            acked = before if op in ("insert", "remove") else after
            return acked, after, collection

    def test_clean_run_matches_shadow(self, tmp_path):
        io = FaultyIO()
        shadow, _, collection = self._run(str(tmp_path), io)
        assert values(collection) == shadow
        collection.close()
        assert io.counts["replace"] == 4  # two compactions, two renames each

    def test_crash_at_every_io_operation(self, tmp_path):
        """Plant a crash at the k-th I/O operation, for every k the
        clean workload performs, and hold recovery to the oracle."""
        probe = FaultyIO()
        _, _, collection = self._run(str(tmp_path / "probe"), probe)
        total = sum(probe.counts.values())  # in-run ops only, pre-close
        collection.close()
        assert total > 40  # the sweep is not vacuous
        for point in range(1, total + 1):
            directory = str(tmp_path / f"crash{point}")
            io = FaultyIO(FaultPlan.crash(nth=point))
            shadow, shadow_plus, crashed = self._run(directory, io)
            assert io.fired, f"crash point {point} never fired"
            # Simulate process death: drop the crashed handles without
            # an orderly close (buffered frames may or may not land,
            # which is exactly what the oracle allows for).
            del crashed
            reopened = durable(directory)
            recovered = values(reopened)
            assert recovered in (shadow, shadow_plus), (
                f"crash point {point}: recovered {recovered!r}, expected "
                f"{shadow!r} or {shadow_plus!r}"
            )
            assert reopened.health.ok
            # The recovered collection accepts writes and stays correct.
            reopened.insert_many([{"probe": point}])
            reopened.close()

    @pytest.mark.parametrize("round_", range(_SCALE))
    def test_randomised_torn_crash_writes(self, tmp_path, round_):
        """Crashing *inside* a write (torn prefix of ``keep`` bytes)
        still recovers a committed prefix: the torn frame never
        replays."""
        import random

        rng = random.Random(2024 + round_)
        for case in range(8):
            directory = str(tmp_path / f"case{case}")
            io = FaultyIO(
                FaultPlan.crash(
                    "write",
                    nth=rng.randint(1, 12),
                    keep=rng.randint(0, 30),
                )
            )
            shadow, shadow_plus, crashed = self._run(directory, io)
            del crashed
            reopened = durable(directory)
            assert values(reopened) in (shadow, shadow_plus)
            reopened.close()
