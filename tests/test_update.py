"""The update pipeline: compiled programs, delta index maintenance.

Covers the tentpole requirements explicitly: operator semantics pinned
against the naive reference interpreter, target selection through the
planner (pruned vs scanned), delta maintenance equalling both the
rebuild strategy and a from-scratch index rebuild (the consistency
oracle), schema revalidation leaving rejected updates without a trace,
upsert, the compile cache, and the explain dry run.

The randomised suites scale with ``REPRO_DIFF_SCALE`` (the nightly CI
job runs them at ~20x the per-PR iteration counts).
"""

from __future__ import annotations

import copy
import os
import random

import pytest

from repro.errors import (
    DocumentRejectedError,
    ParseError,
    UnsupportedValueError,
    UpdateError,
)
from repro.mongo.aggregate import match_value
from repro.mongo.update import compile_update, naive_update_value
from repro.store import Collection, DocumentIndexes
from repro.workloads import people_collection
from repro import api

_SCALE = int(os.environ.get("REPRO_DIFF_SCALE", "1"))

PEOPLE = people_collection(150, seed=11)


def rebuilt(collection: Collection) -> DocumentIndexes:
    """Full-rescan reference: fresh indexes over the live documents."""
    fresh = DocumentIndexes()
    for doc_id, tree in collection.documents():
        fresh.add(doc_id, tree)
    return fresh


def assert_oracle(collection: Collection) -> None:
    """The incrementally maintained indexes must equal a from-scratch
    rebuild (including the per-document entry refcounts)."""
    assert collection.indexes.snapshot() == rebuilt(collection).snapshot()


def applied(update_doc, doc):
    """Apply compiled and naive; assert they agree; return the value."""
    compiled = compile_update(update_doc, cache=None)
    new_value, _ = compiled.apply(copy.deepcopy(doc))
    naive = naive_update_value(update_doc, doc)
    assert new_value == naive, (update_doc, doc, new_value, naive)
    return new_value


@pytest.fixture
def people() -> Collection:
    return api.collection(people_collection(60, seed=5))


# ---------------------------------------------------------------------------
# Operator semantics (compiled pinned against the naive reference).
# ---------------------------------------------------------------------------


class TestOperators:
    def test_set_replaces_and_creates(self):
        doc = {"a": 1, "b": {"c": 2}}
        assert applied({"$set": {"a": 9}}, doc) == {"a": 9, "b": {"c": 2}}
        assert applied({"$set": {"b.d": 3}}, doc) == {
            "a": 1, "b": {"c": 2, "d": 3}
        }
        assert applied({"$set": {"x.y.z": 1}}, doc) == {
            "a": 1, "b": {"c": 2}, "x": {"y": {"z": 1}}
        }

    def test_set_array_element_and_append(self):
        doc = {"items": [{"n": 1}, {"n": 2}]}
        assert applied({"$set": {"items.1.n": 5}}, doc) == {
            "items": [{"n": 1}, {"n": 5}]
        }
        assert applied({"$set": {"items.2": {"n": 3}}}, doc) == {
            "items": [{"n": 1}, {"n": 2}, {"n": 3}]
        }

    def test_set_is_spine_copying(self):
        doc = {"a": {"b": 1}, "sibling": {"big": [1, 2, 3]}}
        compiled = compile_update({"$set": {"a.b": 2}}, cache=None)
        new_value, mutations = compiled.apply(doc)
        assert doc == {"a": {"b": 1}, "sibling": {"big": [1, 2, 3]}}
        assert new_value["sibling"] is doc["sibling"]
        assert len(mutations) == 1
        assert mutations[0].path == ("a", "b")

    def test_set_equal_value_is_a_no_op(self):
        compiled = compile_update({"$set": {"a": {"b": [1]}}}, cache=None)
        doc = {"a": {"b": [1]}}
        new_value, mutations = compiled.apply(doc)
        assert new_value is doc
        assert mutations == []

    def test_unset(self):
        doc = {"a": 1, "b": {"c": 2, "d": 3}}
        assert applied({"$unset": {"b.c": ""}}, doc) == {"a": 1, "b": {"d": 3}}
        assert applied({"$unset": {"missing": ""}}, doc) == doc

    def test_inc_and_mul(self):
        doc = {"n": 10, "nested": {"m": 4}}
        assert applied({"$inc": {"n": 5}}, doc)["n"] == 15
        assert applied({"$inc": {"n": -3}}, doc)["n"] == 7
        assert applied({"$mul": {"nested.m": 3}}, doc)["nested"]["m"] == 12
        # Missing fields are created (0 + n, 0 * n).
        assert applied({"$inc": {"fresh": 2}}, doc)["fresh"] == 2
        assert applied({"$mul": {"fresh": 2}}, doc)["fresh"] == 0

    def test_rename(self):
        doc = {"a": {"b": 7}, "keep": 1}
        assert applied({"$rename": {"a.b": "c"}}, doc) == {
            "a": {}, "keep": 1, "c": 7
        }
        assert applied({"$rename": {"missing": "c"}}, doc) == doc

    def test_push_and_each(self):
        doc = {"tags": ["a"]}
        assert applied({"$push": {"tags": "b"}}, doc) == {"tags": ["a", "b"]}
        assert applied({"$push": {"tags": {"$each": ["b", "c"]}}}, doc) == {
            "tags": ["a", "b", "c"]
        }
        assert applied({"$push": {"fresh": {"$each": []}}}, doc) == {
            "tags": ["a"], "fresh": []
        }

    def test_add_to_set(self):
        doc = {"tags": ["a", "b"]}
        assert applied({"$addToSet": {"tags": "a"}}, doc) == doc
        assert applied({"$addToSet": {"tags": "c"}}, doc) == {
            "tags": ["a", "b", "c"]
        }
        assert applied(
            {"$addToSet": {"tags": {"$each": ["b", "d", "d"]}}}, doc
        ) == {"tags": ["a", "b", "d"]}

    def test_pull(self):
        doc = {"n": [1, 5, 2, 5], "docs": [{"k": 1}, {"k": 2}]}
        assert applied({"$pull": {"n": 5}}, doc)["n"] == [1, 2]
        assert applied({"$pull": {"n": {"$gt": 1}}}, doc)["n"] == [1]
        assert applied({"$pull": {"docs": {"k": 2}}}, doc)["docs"] == [{"k": 1}]
        assert applied({"$pull": {"missing": 1}}, doc) == doc

    def test_pop(self):
        doc = {"n": [1, 2, 3]}
        assert applied({"$pop": {"n": 1}}, doc)["n"] == [1, 2]
        assert applied({"$pop": {"n": -1}}, doc)["n"] == [2, 3]
        assert applied({"$pop": {"missing": 1}}, doc) == doc

    def test_operators_apply_in_document_order(self):
        doc = {"n": 2}
        assert applied({"$inc": {"n": 1}, "$mul": {"n": 10}}, doc)["n"] == 30
        assert applied({"$mul": {"n": 10}, "$inc": {"n": 1}}, doc)["n"] == 21

    def test_multiple_fields_per_operator(self):
        doc = {"a": 1, "b": 2}
        assert applied({"$inc": {"a": 1, "b": 1}}, doc) == {"a": 2, "b": 3}


class TestOperatorErrors:
    @pytest.mark.parametrize(
        "update_doc, doc",
        [
            ({"$inc": {"a": 1}}, {"a": "text"}),
            ({"$mul": {"a": 2}}, {"a": [1]}),
            ({"$push": {"a": 1}}, {"a": 5}),
            ({"$addToSet": {"a": 1}}, {"a": 5}),
            ({"$pull": {"a": 1}}, {"a": 5}),
            ({"$pop": {"a": 1}}, {"a": 5}),
            ({"$set": {"a.b": 1}}, {"a": 5}),
            ({"$set": {"a.5": 1}}, {"a": [1, 2]}),
            ({"$unset": {"a.0": ""}}, {"a": [1, 2]}),
        ],
    )
    def test_apply_time_errors_match_naive(self, update_doc, doc):
        compiled = compile_update(update_doc, cache=None)
        with pytest.raises(UpdateError):
            compiled.apply(copy.deepcopy(doc))
        with pytest.raises(UpdateError):
            naive_update_value(update_doc, doc)

    @pytest.mark.parametrize(
        "update_doc",
        [
            {},
            [],
            {"$set": {}},
            {"$frobnicate": {"a": 1}},
            {"$inc": {"a": 1.5}},
            {"$inc": {"a": True}},
            {"$mul": {"a": "2"}},
            {"$pop": {"a": 2}},
            {"$pop": {"a": True}},
            {"$rename": {"a": 5}},
            {"$rename": {"a": "a"}},
            {"$rename": {"a.b": "a.b.c"}},
            {"$push": {"a": {"$each": 1}}},
            {"$push": {"a": {"$each": [], "$slice": 2}}},
            {"$set": {"": 1}},
            {"$set": {"a..b": 1}},
            {"$pull": {"a": {"$weird": 1}}},
        ],
    )
    def test_compile_time_errors(self, update_doc):
        with pytest.raises(ParseError):
            compile_update(update_doc, cache=None)
        with pytest.raises(ParseError):
            naive_update_value(update_doc, {"a": 1})


# ---------------------------------------------------------------------------
# Collection-level behaviour.
# ---------------------------------------------------------------------------


class TestCollectionUpdates:
    def test_update_many_matches_and_modifies(self, people):
        before = {
            doc_id: tree.to_value() for doc_id, tree in people.documents()
        }
        targets = [
            doc_id for doc_id, value in before.items()
            if value["address"]["city"] == "Talca"
        ]
        result = people.update_many(
            {"address.city": "Talca"}, {"$inc": {"age": 1}}
        )
        assert result.matched_count == len(targets)
        assert result.modified_count == len(targets)
        assert result.upserted_id is None
        for doc_id, tree in people.documents():
            expected = before[doc_id]["age"] + (1 if doc_id in targets else 0)
            assert tree.to_value()["age"] == expected
        assert_oracle(people)

    def test_update_one_touches_only_the_first_match(self, people):
        ages = {doc_id: tree.to_value()["age"]
                for doc_id, tree in people.documents()}
        matching = people.match_ids(
            compile_find_cached({"address.city": "Lille"})
        )
        result = people.update_one(
            {"address.city": "Lille"}, {"$inc": {"age": 100}}
        )
        assert result == type(result)(1, 1)
        first = matching[0]
        for doc_id, tree in people.documents():
            bump = 100 if doc_id == first else 0
            assert tree.to_value()["age"] == ages[doc_id] + bump
        assert_oracle(people)

    def test_lazy_rebuild_is_observable_then_flushed(self, people):
        result = people.update_many({"age": {"$gt": 40}}, {"$inc": {"age": 1}})
        assert people.pending_updates == result.modified_count > 0
        # Any read flushes only what it touches; documents() flushes all.
        for _doc_id, _tree in people.documents():
            pass
        assert people.pending_updates == 0
        assert_oracle(people)

    def test_queries_never_see_stale_answers(self, people):
        sue_before = people.count({"name.first": "Sue"})
        assert sue_before > 0
        people.update_many({"name.first": "Sue"}, {"$set": {"name.first": "Susan"}})
        assert people.count({"name.first": "Sue"}) == 0
        assert people.count({"name.first": "Susan"}) == sue_before
        assert_oracle(people)

    def test_matched_but_unmodified_bumps_nothing(self, people):
        version = people.version
        snapshot = people.indexes.snapshot()
        result = people.update_many(
            {"address.city": "Talca"}, {"$set": {"address.city": "Talca"}}
        )
        assert result.matched_count > 0
        assert result.modified_count == 0
        assert people.version == version
        assert people.indexes.snapshot() == snapshot

    def test_update_missing_match_without_upsert(self, people):
        result = people.update_many({"id": -1}, {"$set": {"x": 1}})
        assert (result.matched_count, result.modified_count) == (0, 0)
        assert result.upserted_id is None

    def test_unindexed_collection_updates(self):
        collection = api.collection(people_collection(30, seed=3), indexed=False)
        result = collection.update_many(
            {"address.city": "Talca"}, {"$inc": {"age": 1}}
        )
        indexed = api.collection(people_collection(30, seed=3))
        expected = indexed.update_many(
            {"address.city": "Talca"}, {"$inc": {"age": 1}}
        )
        assert result == expected
        assert [tree.to_value() for _, tree in collection.documents()] == [
            tree.to_value() for _, tree in indexed.documents()
        ]

    def test_extended_collection_updates(self):
        collection = api.collection(
            [{"flag": True, "note": None}], extended=True
        )
        collection.update_many({}, {"$set": {"flag": False, "extra": None}})
        assert collection.get(0).to_value() == {
            "flag": "false", "note": "null", "extra": "null"
        }
        assert_oracle(collection)

    def test_strict_collection_rejects_unsupported_values(self, people):
        version = people.version
        snapshot = people.indexes.snapshot()
        with pytest.raises(UnsupportedValueError):
            people.update_many({}, {"$set": {"flag": True}})
        assert people.version == version
        assert people.indexes.snapshot() == snapshot

    def test_update_after_remove_skips_the_tombstone(self, people):
        victim = people.doc_ids()[0]
        people.remove(victim)
        people.update_many({}, {"$inc": {"age": 1}})
        assert victim not in people
        assert_oracle(people)

    def test_mutation_delta_only_touches_mutated_paths(self, people):
        report = people.explain_update(
            {"address.city": "Talca"}, {"$inc": {"age": 1}}
        )
        # An age bump can only ever touch the leaf-value tables: the
        # paths/kinds/keys postings of the documents are untouched.
        assert set(report.touched_tables) <= {"eq", "tails", "values"}
        assert report.entries_added > 0
        assert report.entries_removed > 0

    def test_replace_one(self, people):
        target = people.find_trees({"address.city": "Oxford"})
        assert target
        result = people.replace_one(
            {"address.city": "Oxford"}, {"fresh": 1}
        )
        assert (result.matched_count, result.modified_count) == (1, 1)
        assert people.count({"fresh": 1}) == 1
        assert_oracle(people)

    def test_replace_one_rejects_operator_documents(self, people):
        with pytest.raises(ParseError):
            people.replace_one({}, {"$set": {"a": 1}})


def compile_find_cached(filter_doc):
    from repro.query.compiled import compile_mongo_find

    return compile_mongo_find(filter_doc)


class TestUpsert:
    def test_upsert_seeds_from_equality_facts(self, people):
        total = len(people)
        result = people.update_one(
            {"id": 777, "name.first": {"$eq": "Zoe"}, "age": {"$gt": 4}},
            {"$set": {"address.city": "Lille"}, "$inc": {"visits": 1}},
            upsert=True,
        )
        assert result.matched_count == 0
        assert result.upserted_id is not None
        assert len(people) == total + 1
        assert people.get(result.upserted_id).to_value() == {
            "id": 777,
            "name": {"first": "Zoe"},
            "address": {"city": "Lille"},
            "visits": 1,
        }
        assert_oracle(people)

    def test_upsert_through_and_branches(self, people):
        result = people.update_many(
            {"$and": [{"kind": "robot"}, {"serial": 9}]},
            {"$set": {"oiled": "yes"}},
            upsert=True,
        )
        assert people.get(result.upserted_id).to_value() == {
            "kind": "robot", "serial": 9, "oiled": "yes"
        }

    def test_no_upsert_when_something_matched(self, people):
        total = len(people)
        result = people.update_many(
            {"address.city": "Talca"}, {"$inc": {"age": 1}}, upsert=True
        )
        assert result.upserted_id is None
        assert result.matched_count > 0
        assert len(people) == total


class TestSchemaEnforcement:
    SCHEMA = {
        "type": "object",
        "properties": {"age": {"type": "number"}},
        "required": ["age"],
    }

    def make(self):
        return api.collection(
            [{"age": 30, "tag": "a"}, {"age": 40, "tag": "b"}],
            schema=self.SCHEMA,
        )

    def test_valid_update_revalidates_and_commits(self):
        collection = self.make()
        result = collection.update_many({}, {"$inc": {"age": 1}})
        assert result.modified_count == 2
        assert [t.to_value()["age"] for _, t in collection.documents()] == [31, 41]

    def test_invalid_update_rejects_without_a_trace(self):
        collection = self.make()
        version = collection.version
        snapshot = collection.indexes.snapshot()
        before = [tree.to_value() for _, tree in collection.documents()]
        with pytest.raises(DocumentRejectedError):
            collection.update_many({}, {"$set": {"age": "old"}})
        assert collection.version == version
        assert collection.indexes.snapshot() == snapshot
        assert [t.to_value() for _, t in collection.documents()] == before

    def test_batch_rejection_is_atomic(self):
        # The first target would stay valid, the second would not --
        # neither commits.
        collection = api.collection(
            [{"age": 30}, {"age": "soon-invalid"}],
            schema={"type": "object"},
        )
        strict = api.collection(
            [{"age": 30, "ok": "y"}, {"age": 40}], schema=self.SCHEMA
        )
        before = [tree.to_value() for _, tree in strict.documents()]
        with pytest.raises(DocumentRejectedError):
            # Unsetting age invalidates both; atomicity means doc 0
            # (staged first) must also survive untouched.
            strict.update_many({}, {"$unset": {"age": ""}})
        assert [t.to_value() for _, t in strict.documents()] == before
        assert_oracle(strict)

    def test_upsert_respects_the_schema(self):
        collection = self.make()
        with pytest.raises(DocumentRejectedError):
            collection.update_one(
                {"tag": "zzz"}, {"$set": {"name": "x"}}, upsert=True
            )
        assert len(collection) == 2


# ---------------------------------------------------------------------------
# Planner integration and the explain dry run.
# ---------------------------------------------------------------------------


class TestPlannerIntegration:
    def test_selective_filter_prunes_targets(self, people):
        report = people.explain_update(
            {"address.city": "Talca", "name.first": "Sue"},
            {"$inc": {"age": 1}},
        )
        assert report.used_indexes
        assert report.candidates is not None
        assert report.scanned == report.candidates < report.total
        assert report.pruned == report.total - report.scanned

    def test_dialect_fallback_scans(self, people):
        # A float bound is valid in value space but outside the find
        # compiler's dialect: the update still runs, as a scan.
        report = people.explain_update(
            {"age": {"$gt": 50.5}}, {"$inc": {"age": 1}}
        )
        assert not report.used_indexes
        assert report.scanned == report.total
        result = people.update_many({"age": {"$gt": 50.5}}, {"$inc": {"age": 1}})
        assert result.matched_count == report.matched
        assert_oracle(people)

    def test_explain_first_only_previews_update_one(self, people):
        many = people.explain_update(
            {"address.city": "Lille"}, {"$inc": {"age": 1}}
        )
        one = people.explain_update(
            {"address.city": "Lille"}, {"$inc": {"age": 1}}, first_only=True
        )
        assert many.matched > 1
        assert (one.matched, one.modified) == (1, 1)
        assert one.scanned <= many.scanned
        # Early exit leaves documents unscanned without them counting
        # as index-pruned; both reports prune identically.
        assert one.pruned == many.pruned == many.total - many.candidates

    def test_full_scan_reports_zero_pruned(self, people):
        report = people.explain_update(
            {"age": {"$gt": 50.5}}, {"$inc": {"age": 1}}, first_only=True
        )
        assert not report.used_indexes
        assert report.pruned == 0

    def test_explain_is_a_dry_run(self, people):
        version = people.version
        snapshot = people.indexes.snapshot()
        values = [tree.to_value() for _, tree in people.documents()]
        report = people.explain_update({}, {"$inc": {"age": 1}})
        assert report.modified == len(values)
        assert people.version == version
        assert people.indexes.snapshot() == snapshot
        assert [t.to_value() for _, t in people.documents()] == values


class TestCompileCache:
    def test_update_programs_are_cached(self):
        first = compile_update({"$inc": {"age": 1}})
        again = compile_update({"$inc": {"age": 1}})
        assert first is again

    def test_operator_order_is_part_of_the_key(self):
        merged = compile_update({"$inc": {"n": 1}, "$mul": {"n": 10}})
        reversed_doc = compile_update({"$mul": {"n": 10}, "$inc": {"n": 1}})
        assert merged is not reversed_doc
        assert merged.apply({"n": 2})[0] == {"n": 30}
        assert reversed_doc.apply({"n": 2})[0] == {"n": 21}

    def test_cache_none_compiles_fresh(self):
        first = compile_update({"$inc": {"age": 1}}, cache=None)
        again = compile_update({"$inc": {"age": 1}}, cache=None)
        assert first is not again


# ---------------------------------------------------------------------------
# Randomised differential suites (scaled by REPRO_DIFF_SCALE).
# ---------------------------------------------------------------------------


FILTERS = [
    {},
    {"address.city": "Talca"},
    {"name.first": "Sue"},
    {"age": {"$gt": 60}},
    {"age": {"$gte": 30, "$lte": 50}},
    {"hobbies": "yoga"},
    {"$or": [{"address.city": "Lille"}, {"address.city": "Oxford"}]},
    {"name.first": "Sue", "name.last": "Chen"},
    {"counters.visits": {"$gt": 2}},
]

_FIRST_NAMES = ("John", "Sue", "Ana", "Li", "Omar", "Mia")
_CITIES = ("Santiago", "Lille", "Oxford", "Talca")
_HOBBIES = ("fishing", "yoga", "chess", "running", "painting")


def _random_update(rng: random.Random) -> dict:
    pool = [
        lambda: ("$inc", {"age": rng.choice([-2, -1, 1, 3])}),
        lambda: ("$inc", {"counters.visits": 1}),
        lambda: ("$mul", {"age": rng.choice([1, 2])}),
        lambda: ("$set", {"name.first": rng.choice(_FIRST_NAMES)}),
        lambda: ("$set", {"address.city": rng.choice(_CITIES)}),
        lambda: ("$set", {"badges.latest": rng.choice(_HOBBIES)}),
        lambda: ("$unset", {"badges": ""}),
        lambda: ("$unset", {"address.zip": ""}),
        lambda: ("$push", {"hobbies": rng.choice(_HOBBIES)}),
        lambda: (
            "$push",
            {"hobbies": {"$each": rng.sample(_HOBBIES, k=rng.randrange(0, 3))}},
        ),
        lambda: ("$addToSet", {"hobbies": rng.choice(_HOBBIES)}),
        lambda: ("$pull", {"hobbies": rng.choice(_HOBBIES)}),
        lambda: ("$pull", {"hobbies": {"$in": list(rng.sample(_HOBBIES, k=2))}}),
        lambda: ("$pop", {"hobbies": rng.choice([1, -1])}),
        lambda: ("$rename", {"address.zip": "zipcode"}),
        lambda: ("$rename", {"zipcode": "address.zip"}),
    ]
    update: dict = {}
    for _ in range(rng.randrange(1, 4)):
        operator, fields = rng.choice(pool)()
        update.setdefault(operator, {}).update(fields)
    return update


class TestRandomisedDifferential:
    def test_compiled_equals_naive_and_indexes_stay_consistent(self):
        rng = random.Random(4242)
        collection = api.collection(copy.deepcopy(PEOPLE))
        mirror: list = copy.deepcopy(PEOPLE)
        for round_number in range(12 * _SCALE):
            filter_doc = rng.choice(FILTERS)
            update_doc = _random_update(rng)
            result = collection.update_many(filter_doc, update_doc)
            expected_matched = 0
            for position, doc in enumerate(mirror):
                if doc is not None and match_value(filter_doc, doc):
                    expected_matched += 1
                    mirror[position] = naive_update_value(update_doc, doc)
            assert result.matched_count == expected_matched, (
                filter_doc,
                update_doc,
            )
            if rng.random() < 0.2 and collection.doc_ids():
                victim = rng.choice(collection.doc_ids())
                collection.remove(victim)
                mirror[victim] = None
            if rng.random() < 0.2:
                fresh = people_collection(3, seed=round_number)
                collection.insert_many(fresh)
                mirror.extend(copy.deepcopy(fresh))
            if rng.random() < 0.3:
                # Interleave reads so some rounds hit dirty documents
                # and some hit freshly rebuilt trees.
                assert_oracle(collection)
        for doc_id, tree in collection.documents():
            assert tree.to_value() == mirror[doc_id], doc_id
        assert_oracle(collection)

    def test_delta_equals_rebuild_maintenance(self):
        rng = random.Random(77)
        docs = people_collection(80, seed=21)
        delta = api.collection(copy.deepcopy(docs))
        rebuild = api.collection(copy.deepcopy(docs))
        for _ in range(10 * _SCALE):
            filter_doc = rng.choice(FILTERS)
            update_doc = _random_update(rng)
            left = delta.update_many(filter_doc, update_doc, maintenance="delta")
            right = rebuild.update_many(
                filter_doc, update_doc, maintenance="rebuild"
            )
            assert (left.matched_count, left.modified_count) == (
                right.matched_count,
                right.modified_count,
            ), (filter_doc, update_doc)
        left_values = [tree.to_value() for _, tree in delta.documents()]
        right_values = [tree.to_value() for _, tree in rebuild.documents()]
        assert left_values == right_values
        assert delta.indexes.snapshot() == rebuild.indexes.snapshot()

    def test_repeated_updates_to_the_same_documents(self):
        # The counter workload: many updates per document between
        # reads, so most rounds run against the pending-value mirror.
        collection = api.collection(people_collection(25, seed=9))
        mirror = people_collection(25, seed=9)
        rng = random.Random(31)
        for _ in range(20 * _SCALE):
            update_doc = _random_update(rng)
            collection.update_many({}, update_doc)
            mirror = [naive_update_value(update_doc, doc) for doc in mirror]
        for doc_id, tree in collection.documents():
            assert tree.to_value() == mirror[doc_id]
        assert_oracle(collection)
