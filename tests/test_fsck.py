"""The offline integrity verifier and repairer (``repro db verify``).

Every corruption class fsck distinguishes, verified end to end:

* clean directories verify clean (including empty and legacy ones);
* torn WAL tails are a *warning* (recovery handles them) and repair
  truncates back to the committed prefix;
* a flipped bit inside the snapshot payload trips the CRC32 self-check
  -- the loader falls back to full WAL replay (with a warning) when
  the log reaches back to LSN 1, refuses loudly when it does not, and
  repair quarantines (never deletes) the damaged file;
* LSN gaps and content-level garbage in well-formed frames are errors,
  repaired by truncating at the first offending record;
* foreign WAL files (bad magic) and leftover ``.tmp`` files are set
  aside whole;
* the CLI surface: ``db verify`` exits 0/1 on clean/corrupt, ``db
  repair`` prints its actions and re-verifies.

Repair is required to converge: after ``repair()``, ``verify()`` must
be clean, and the engine must be able to open the directory.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

import pytest

from repro.cli import main
from repro.errors import StorageFormatError, StoreError
from repro.store import Collection, DurableEngine
from repro.store.fsck import repair, verify
from repro.store.wal import WAL_MAGIC
from repro import api


def durable(path, name="main", **kwargs):
    kwargs.setdefault("sync", "flush")
    documents = kwargs.pop("documents", ())
    engine = DurableEngine(os.fspath(path), name, **kwargs)
    return Collection(documents, engine=engine)


def values(collection: Collection) -> dict[int, object]:
    return {doc_id: tree.to_value() for doc_id, tree in collection.documents()}


def frame(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return struct.pack(">II", len(body), zlib.crc32(body)) + body


def seeded(tmp_path, *, extra_after_compact=True):
    """A directory with a snapshot (3 docs) and, optionally, one
    post-checkpoint WAL record (a 4th doc)."""
    collection = durable(tmp_path)
    collection.insert_many([{"n": 1}, {"n": 2}, {"n": 3}])
    collection.compact()
    if extra_after_compact:
        collection.insert_many([{"n": 4}])
    collection.close()
    return str(tmp_path)


def corrupt_snapshot_payload(path, name="main"):
    """Flip document content inside the snapshot without breaking its
    JSON -- exactly what the CRC self-check exists to catch."""
    snapshot_path = os.path.join(path, f"{name}.snapshot.json")
    blob = open(snapshot_path, "rb").read()
    assert b'"n":1' in blob
    with open(snapshot_path, "wb") as handle:
        handle.write(blob.replace(b'"n":1', b'"n":9', 1))
    return snapshot_path


class TestVerifyClean:
    def test_fresh_directory_is_clean(self, tmp_path):
        path = seeded(tmp_path, extra_after_compact=False)
        report = verify(path)
        assert report.ok and report.clean
        [check] = report.collections
        assert check.name == "main"
        assert check.documents == 3
        assert check.snapshot_lsn == 1  # one insert batch folded in

    def test_wal_records_are_replayed_into_the_shadow(self, tmp_path):
        path = seeded(tmp_path)
        report = verify(path)
        assert report.ok
        [check] = report.collections
        assert check.documents == 4
        assert check.wal_frames == 1
        assert check.wal_last_lsn == 2

    def test_multiple_collections_and_name_filter(self, tmp_path):
        a = durable(tmp_path, "alpha", documents=[{"a": 1}])
        b = durable(tmp_path, "beta", documents=[{"b": 1}, {"b": 2}])
        a.close()
        b.close()
        report = verify(str(tmp_path))
        assert [c.name for c in report.collections] == ["alpha", "beta"]
        only = verify(str(tmp_path), "beta")
        assert [c.name for c in only.collections] == ["beta"]
        assert only.collections[0].documents == 2

    def test_not_a_directory_is_refused(self, tmp_path):
        with pytest.raises(StoreError):
            verify(str(tmp_path / "missing"))

    def test_stale_pre_snapshot_records_are_informational(self, tmp_path):
        """An interrupted compaction legitimately leaves covered
        records in the log; fsck notes them without flagging."""
        collection = durable(tmp_path)
        collection.insert_many([{"n": 1}])
        collection.compact()
        collection.close()
        # Reconstruct the pre-reset log: records the snapshot covers.
        wal_path = os.path.join(str(tmp_path), "main.wal")
        with open(wal_path, "wb") as handle:
            handle.write(WAL_MAGIC)
            handle.write(
                frame({"lsn": 1, "op": "insert", "ids": [0], "docs": [{"n": 1}]})
            )
        report = verify(str(tmp_path))
        assert report.ok and report.clean  # info findings don't dirty it
        [check] = report.collections
        assert check.wal_stale_frames == 1
        assert {f.code for f in check.findings} == {"wal-stale-prefix"}
        assert check.documents == 1


class TestTornTail:
    def test_torn_tail_is_a_warning_and_repair_truncates(self, tmp_path):
        path = seeded(tmp_path)
        wal_path = os.path.join(path, "main.wal")
        with open(wal_path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x33garbage")
        report = verify(path)
        assert report.ok  # recoverable: not an error
        assert not report.clean
        assert {f.code for f in report.findings()} == {"wal-torn-tail"}
        result = repair(path)
        assert [a.code for a in result.actions] == ["truncate-torn-tail"]
        assert result.ok and result.verified.clean
        reopened = durable(tmp_path)
        assert len(reopened) == 4
        reopened.close()


class TestSnapshotBitRot:
    def test_checksum_mismatch_is_an_error(self, tmp_path):
        path = seeded(tmp_path, extra_after_compact=False)
        corrupt_snapshot_payload(path)
        report = verify(path)
        assert not report.ok
        codes = {f.code for f in report.findings()}
        assert "snapshot-checksum-mismatch" in codes
        assert "wal-unreachable" in codes  # post-compact WAL is empty

    def test_loader_falls_back_to_full_replay(self, tmp_path):
        """When the WAL still reaches LSN 1 (a checkpoint whose reset
        never landed), a rotten snapshot costs a warning, not data."""
        from repro.store import FaultPlan, FaultyIO
        from repro.errors import StorageIOError

        io = FaultyIO()
        collection = durable(tmp_path, io=io)
        collection.insert_many([{"n": 1}, {"n": 2}])
        io.arm(FaultPlan.fail("replace", nth=2))  # fail the WAL reset
        with pytest.raises(StorageIOError):
            collection.compact()
        collection.close()
        corrupt_snapshot_payload(str(tmp_path))
        with pytest.warns(RuntimeWarning, match="checksum mismatch"):
            reopened = durable(tmp_path)
        assert values(reopened) == {0: {"n": 1}, 1: {"n": 2}}
        reopened.close()

    def test_loader_refuses_when_replay_cannot_reconstruct(self, tmp_path):
        path = seeded(tmp_path)  # post-compact WAL starts at LSN 2
        corrupt_snapshot_payload(path)
        with pytest.warns(RuntimeWarning, match="checksum mismatch"):
            with pytest.raises(StorageFormatError, match="db repair"):
                durable(tmp_path)

    def test_repair_quarantines_and_converges(self, tmp_path):
        path = seeded(tmp_path)
        snapshot_path = corrupt_snapshot_payload(path)
        result = repair(path)
        codes = [a.code for a in result.actions]
        assert "quarantine-snapshot" in codes
        assert "quarantine-wal" in codes  # its records need the snapshot
        assert result.ok
        # Nothing was deleted: the corrupt bytes are set aside intact.
        assert os.path.exists(snapshot_path + ".quarantined")
        quarantined = open(snapshot_path + ".quarantined", "rb").read()
        assert b'"n":9' in quarantined
        # The engine can open the (now empty) collection again.
        reopened = durable(tmp_path)
        assert len(reopened) == 0
        reopened.insert_many([{"fresh": 1}])
        reopened.close()

    def test_quarantine_names_never_collide(self, tmp_path):
        path = seeded(tmp_path)
        snapshot_path = corrupt_snapshot_payload(path)
        open(snapshot_path + ".quarantined", "w").close()
        result = repair(path)
        assert result.ok
        assert os.path.exists(snapshot_path + ".quarantined.1")


class TestFrameLevelCorruption:
    def _write_wal(self, tmp_path, *frames_):
        wal_path = os.path.join(str(tmp_path), "main.wal")
        with open(wal_path, "wb") as handle:
            handle.write(WAL_MAGIC)
            for payload in frames_:
                handle.write(frame(payload))
        return wal_path

    def test_lsn_gap_is_an_error_repair_keeps_the_prefix(self, tmp_path):
        self._write_wal(
            tmp_path,
            {"lsn": 1, "op": "insert", "ids": [0], "docs": [{"n": 1}]},
            {"lsn": 3, "op": "insert", "ids": [1], "docs": [{"n": 3}]},
        )
        report = verify(str(tmp_path))
        assert not report.ok
        assert {f.code for f in report.findings()} == {"wal-replay-failed"}
        result = repair(str(tmp_path))
        assert [a.code for a in result.actions] == ["truncate-at-corrupt-record"]
        assert result.ok and result.verified.clean
        reopened = durable(tmp_path)
        assert values(reopened) == {0: {"n": 1}}
        reopened.close()

    def test_unknown_op_is_an_error_repair_truncates_before_it(
        self, tmp_path
    ):
        self._write_wal(
            tmp_path,
            {"lsn": 1, "op": "insert", "ids": [0], "docs": [{"n": 1}]},
            {"lsn": 2, "op": "frobnicate"},
            {"lsn": 3, "op": "insert", "ids": [1], "docs": [{"n": 3}]},
        )
        report = verify(str(tmp_path))
        assert not report.ok
        result = repair(str(tmp_path))
        assert result.ok
        # Truncation is at the offending frame, not the end: the good
        # record *after* it is gone too (no holes in the history).
        reopened = durable(tmp_path)
        assert values(reopened) == {0: {"n": 1}}
        reopened.close()

    def test_bad_magic_is_quarantined(self, tmp_path):
        wal_path = os.path.join(str(tmp_path), "main.wal")
        with open(wal_path, "wb") as handle:
            handle.write(b"NOTAWAL!" + b"junk" * 8)
        report = verify(str(tmp_path))
        assert not report.ok
        assert {f.code for f in report.findings()} == {"wal-bad-magic"}
        result = repair(str(tmp_path))
        assert [a.code for a in result.actions] == ["quarantine-wal"]
        assert result.ok
        assert os.path.exists(wal_path + ".quarantined")


class TestLegacyAndLeftovers:
    def test_unchecksummed_wrapper_is_a_warning_only(self, tmp_path):
        from repro import api

        payload = api.collection([{"a": 1}]).snapshot()
        snapshot_path = os.path.join(str(tmp_path), "main.snapshot.json")
        with open(snapshot_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "format": "repro-durable-snapshot",
                    "version": 1,
                    "lsn": 0,
                    "collection": payload,
                },
                handle,
            )
        report = verify(str(tmp_path))
        assert report.ok and not report.clean
        codes = {f.code for f in report.findings()}
        assert codes == {"snapshot-unchecksummed", "wal-absent"}
        assert report.collections[0].documents == 1
        # The live loader accepts it too (pre-checksum back-compat)...
        reopened = durable(tmp_path)
        assert values(reopened) == {0: {"a": 1}}
        # ...and the next checkpoint upgrades it to a checksummed file.
        reopened.insert_many([{"a": 2}])
        reopened.compact()
        reopened.close()
        wrapper = json.load(open(snapshot_path, encoding="utf-8"))
        assert isinstance(wrapper["crc32"], int)
        assert verify(str(tmp_path)).clean

    def test_leftover_temp_files_are_quarantined(self, tmp_path):
        path = seeded(tmp_path)
        temp = os.path.join(path, "main.snapshot.json.tmp")
        with open(temp, "wb") as handle:
            handle.write(b"half a snapshot")
        report = verify(path)
        assert report.ok
        assert {f.code for f in report.findings()} == {"leftover-temp"}
        result = repair(path)
        assert [a.code for a in result.actions] == ["quarantine-temp"]
        assert result.ok and result.verified.clean
        assert os.path.exists(temp + ".quarantined")


class TestCli:
    def test_verify_clean_exits_zero(self, tmp_path, capsys):
        path = seeded(tmp_path)
        assert main(["db", "verify", path]) == 0
        out = capsys.readouterr().out
        assert "verify: clean" in out
        assert "main\tok" in out

    def test_verify_corrupt_exits_one(self, tmp_path, capsys):
        path = seeded(tmp_path)
        corrupt_snapshot_payload(path)
        assert main(["db", "verify", path]) == 1
        out = capsys.readouterr().out
        assert "PROBLEMS" in out
        assert "snapshot-checksum-mismatch" in out

    def test_repair_converges_and_exits_zero(self, tmp_path, capsys):
        path = seeded(tmp_path)
        wal_path = os.path.join(path, "main.wal")
        with open(wal_path, "ab") as handle:
            handle.write(b"torn")
        assert main(["db", "repair", path]) == 0
        out = capsys.readouterr().out
        assert "truncate-torn-tail" in out
        assert "repair: clean" in out
        assert main(["db", "verify", path]) == 0
        capsys.readouterr()

    def test_repair_on_clean_directory_is_a_no_op(self, tmp_path, capsys):
        path = seeded(tmp_path, extra_after_compact=False)
        assert main(["db", "repair", path]) == 0
        out = capsys.readouterr().out
        assert "nothing to repair" in out

    def test_verify_name_filter(self, tmp_path, capsys):
        a = durable(tmp_path, "alpha", documents=[{"a": 1}])
        a.close()
        assert main(["db", "verify", str(tmp_path), "--name", "alpha"]) == 0
        out = capsys.readouterr().out
        assert "alpha\tok" in out
