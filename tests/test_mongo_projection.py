"""MongoDB projection: the Section-6 JSON-to-JSON transformation."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.model.tree import JSONTree
from repro.mongo import Projection
from repro import api

DOC = {
    "name": {"first": "John", "last": "Doe"},
    "age": 32,
    "hobbies": ["fishing", "yoga"],
    "friends": [
        {"name": "Sue", "age": 35},
        {"name": "Bob", "age": 28},
    ],
}


class TestInclusion:
    def test_top_level_field(self):
        assert Projection({"age": 1}).apply_value(DOC) == {"age": 32}

    def test_nested_path(self):
        assert Projection({"name.first": 1}).apply_value(DOC) == {
            "name": {"first": "John"}
        }

    def test_multiple_paths(self):
        projected = Projection({"name.last": 1, "age": 1}).apply_value(DOC)
        assert projected == {"name": {"last": "Doe"}, "age": 32}

    def test_whole_subtree(self):
        assert Projection({"name": 1}).apply_value(DOC)["name"] == DOC["name"]

    def test_through_arrays(self):
        projected = Projection({"friends.name": 1}).apply_value(DOC)
        assert projected == {"friends": [{"name": "Sue"}, {"name": "Bob"}]}

    def test_missing_path_projects_empty(self):
        assert Projection({"ghost": 1}).apply_value(DOC) == {}

    def test_atomic_document(self):
        assert Projection({"x": 1}).apply_value(42) == {}


class TestExclusion:
    def test_drop_field(self):
        projected = Projection({"age": 0}).apply_value(DOC)
        assert "age" not in projected
        assert projected["name"] == DOC["name"]

    def test_drop_nested(self):
        projected = Projection({"name.first": 0}).apply_value(DOC)
        assert projected["name"] == {"last": "Doe"}
        assert projected["age"] == 32

    def test_drop_through_arrays(self):
        projected = Projection({"friends.age": 0}).apply_value(DOC)
        assert projected["friends"] == [{"name": "Sue"}, {"name": "Bob"}]

    def test_atomic_untouched(self):
        assert Projection({"x": 0}).apply_value("scalar") == "scalar"


class TestValidation:
    def test_mixed_modes_rejected(self):
        with pytest.raises(ParseError):
            Projection({"a": 1, "b": 0})

    def test_bad_flag_rejected(self):
        with pytest.raises(ParseError):
            Projection({"a": 2})

    def test_empty_path_rejected(self):
        with pytest.raises(ParseError):
            Projection({"": 1})

    def test_non_dict_rejected(self):
        with pytest.raises(ParseError):
            Projection([1])  # type: ignore[arg-type]


class TestTreeInterface:
    def test_apply_returns_valid_tree(self):
        tree = JSONTree.from_value(DOC)
        projected = Projection({"name.first": 1}).apply(tree)
        projected.validate()
        assert projected.to_value() == {"name": {"first": "John"}}


class TestFindWithProjection:
    def test_paper_style_find(self):
        people = api.collection([DOC, {"name": {"first": "Amy"}, "age": 20}])
        results = people.find(
            {"age": {"$gt": 30}}, {"name.first": 1, "age": 1}
        )
        assert results == [{"name": {"first": "John"}, "age": 32}]

    def test_exclusion_in_find(self):
        people = api.collection([DOC])
        results = people.find({}, {"friends": 0, "hobbies": 0})
        assert results == [
            {"name": {"first": "John", "last": "Doe"}, "age": 32}
        ]

    def test_empty_projection_means_whole_documents(self):
        people = api.collection([DOC])
        assert people.find({}, {}) == [DOC]
