"""Golden tests: every worked example in the paper, end to end.

Each test cites the paper location it reproduces, so this file doubles
as an executable index of the paper's running examples.
"""

from __future__ import annotations

import pytest

from repro.jnl.efficient import evaluate_unary
from repro.jnl.parser import parse_jnl
from repro.jsl.bottom_up import satisfies_recursive
from repro.jsl.parser import parse_jsl
from repro.jsl.recursion import is_well_formed
from repro.jsl.satisfiability import jsl_satisfiable
from repro.model.navigation import Navigator
from repro.model.tree import JSONTree
from repro.schema import SchemaValidator, parse_schema, schema_to_jsl
from repro.jsl.evaluator import satisfies
from repro import api


class TestFigure1:
    """Figure 1: the simple JSON document."""

    def test_structure(self, figure1_doc):
        nav = Navigator(figure1_doc)
        assert nav["name"]["first"].value() == "John"
        assert nav["name"]["last"].value() == "Doe"
        assert nav["age"].value() == 32
        assert [nav["hobbies"][i].value() for i in range(2)] == [
            "fishing", "yoga",
        ]


class TestSection2Navigation:
    """Section 2: navigation instructions and their limits."""

    def test_array_k_example(self):
        # K = [12, 5, 22]: random access works ...
        array = JSONTree.from_value([12, 5, 22])
        assert Navigator(array)[1].value() == 5
        # ... but there is no "element greater than the first" primitive;
        # that requires the logic:
        phi = parse_jnl("has([0:]<test(min(12))>)")
        assert array.root in evaluate_unary(array, phi)


class TestExample1MongoDB:
    """Example 1: db.collection.find({name: {$eq: "Sue"}}, {})."""

    def test_find_sue(self):
        collection = api.collection(
            [{"name": "Sue", "age": 30}, {"name": "Ann", "age": 31}]
        )
        assert collection.find({"name": {"$eq": "Sue"}}) == [
            {"name": "Sue", "age": 30}
        ]


class TestSection42Unsatisfiability:
    """Section 4.2: X_a[X_1] ^ X_a[X_b] is unsatisfiable because the
    value of key "a" cannot be an array and an object at once."""

    def test_formula_unsatisfiable(self):
        from repro.jnl.satisfiability import jnl_satisfiable

        phi = parse_jnl("has(.a<has([0])>) and has(.a<has(.b)>)")
        result = jnl_satisfiable(phi)
        assert not result.satisfiable and result.complete


class TestTable1SchemaExamples:
    """Section 5.1: the schema examples around Table 1."""

    def test_binary_string_pattern(self):
        schema = parse_schema({"type": "string", "pattern": "(01)+"})
        validator = SchemaValidator(schema)
        assert validator.validate_value("0101")
        assert not validator.validate_value("abc")

    def test_number_multiples(self):
        schema = parse_schema(
            {"type": "number", "maximum": 12, "multipleOf": 4}
        )
        validator = SchemaValidator(schema)
        assert [n for n in range(15) if validator.validate_value(n)] == [
            0, 4, 8, 12,
        ]

    def test_object_with_pattern_and_additional(self):
        schema = parse_schema(
            {
                "type": "object",
                "properties": {"name": {"type": "string"}},
                "patternProperties": {
                    "a(b|c)a": {"type": "number", "multipleOf": 2}
                },
                "additionalProperties": {
                    "type": "number", "minimum": 1, "maximum": 1,
                },
            }
        )
        validator = SchemaValidator(schema)
        assert validator.validate_value({"name": "x", "aca": 6, "other": 1})
        assert not validator.validate_value({"other": 0})

    def test_array_two_strings_then_numbers(self):
        schema = parse_schema(
            {
                "type": "array",
                "items": [{"type": "string"}, {"type": "string"}],
                "additionalItems": {"type": "number"},
                "uniqueItems": True,
            }
        )
        validator = SchemaValidator(schema)
        assert validator.validate_value(["a", "b", 1, 2])
        assert not validator.validate_value(["a"])

    def test_odd_number_not_schema(self):
        schema = parse_schema({"not": {"type": "number", "multipleOf": 2}})
        validator = SchemaValidator(schema)
        assert validator.validate_value(3)
        assert validator.validate_value("not a number")
        assert not validator.validate_value(8)


class TestSection53Email:
    """Section 5.3: the definitions/$ref email schema."""

    def test_email_schema(self):
        schema = parse_schema(
            {
                "definitions": {
                    "email": {
                        "type": "string",
                        "pattern": "[A-z]*@ciws\\.cl",
                    }
                },
                "not": {"$ref": "#/definitions/email"},
            }
        )
        validator = SchemaValidator(schema)
        assert not validator.validate_value("someone@ciws.cl")
        assert validator.validate_value("someone@example.org")
        assert validator.validate_value({"any": "object"})


class TestExample2EvenPaths:
    """Example 2: gamma_1/gamma_2 accept trees with even-length paths."""

    EXPRESSION = (
        "def g1 := all(.*, $g2);"
        "def g2 := some(.*, true) and all(.*, $g1);"
        "$g1"
    )

    @pytest.mark.parametrize("depth,expected", [(0, True), (1, False),
                                                (2, True), (3, False)])
    def test_acceptance(self, depth, expected):
        from repro.workloads import even_depth_tree

        delta = parse_jsl(self.EXPRESSION)
        assert satisfies_recursive(even_depth_tree(depth), delta) == expected

    def test_example4_unfolding_height_4(self):
        # Example 4 unfolds the Example 2 expression for a height-4 tree.
        from repro.jsl.unfold import unfold
        from repro.jsl import ast

        delta = parse_jsl(self.EXPRESSION)
        unfolded = unfold(delta, 4)
        assert ast.refs_in(unfolded) == set()
        from repro.workloads import even_depth_tree
        from repro.jsl.evaluator import JSLEvaluator

        tree = even_depth_tree(4)
        assert JSLEvaluator(tree).satisfies(unfolded)


class TestExample3WellFormedness:
    """Example 3: gamma = not gamma is ill-formed; Example 2 is fine."""

    def test_cyclic_negation_rejected(self):
        from repro.jsl import RecursiveJSL, Ref, Not

        assert not is_well_formed(
            RecursiveJSL((("g", Not(Ref("g"))),), Ref("g"))
        )

    def test_guarded_cycles_accepted(self):
        assert is_well_formed(parse_jsl(TestExample2EvenPaths.EXPRESSION))


class TestExample5CompleteBinaryTrees:
    """Example 5: ~Unique forces equal siblings; the expression accepts
    exactly the complete binary trees."""

    EXPRESSION = (
        "def g := not some([0:0], true) or "
        "(minch(2) and maxch(2) and not unique and all([0:1], $g));"
        "array and $g"
    )

    def test_complete_trees_accepted(self):
        from repro.workloads import complete_binary_array_tree

        delta = parse_jsl(self.EXPRESSION)
        for depth in range(4):
            assert satisfies_recursive(
                complete_binary_array_tree(depth), delta
            )

    def test_unequal_siblings_rejected(self):
        delta = parse_jsl(self.EXPRESSION)
        lopsided = JSONTree.from_value([[], [[], []]])
        assert not satisfies_recursive(lopsided, delta)

    def test_satisfiable_with_witness(self):
        result = jsl_satisfiable(parse_jsl(self.EXPRESSION))
        assert result.satisfiable
        value = result.witness.to_value()
        assert isinstance(value, list)
        if len(value) == 2:
            assert value[0] == value[1]


class TestSection31FiveValues:
    """Section 3.1: the document contains exactly five JSON values,
    and each subtree is itself a valid JSON document."""

    def test_five_subtrees(self, section3_doc):
        assert len(section3_doc) == 5
        for node in section3_doc.nodes():
            section3_doc.subtree(node).validate()

    def test_theorem1_on_section3_doc(self, section3_doc):
        schema = parse_schema(
            {
                "type": "object",
                "required": ["name", "age"],
                "properties": {
                    "name": {"type": "object",
                             "required": ["first", "last"]},
                    "age": {"type": "number"},
                },
            }
        )
        assert SchemaValidator(schema).validate(section3_doc)
        assert satisfies(section3_doc, schema_to_jsl(schema))
