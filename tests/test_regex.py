"""The regex engine: parsing, automata operations, extraction."""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import regex as rx
from repro.errors import RegexParseError


def _matches(pattern: str, word: str) -> bool:
    nfa = rx.nfa_from_regex(rx.parse_regex(pattern))
    return rx.nfa_matches(nfa, word)


class TestParserFeatures:
    @pytest.mark.parametrize(
        "pattern,word,expected",
        [
            ("abc", "abc", True),
            ("abc", "ab", False),
            ("a|b", "b", True),
            ("a*", "", True),
            ("a*", "aaaa", True),
            ("a+", "", False),
            ("a?b", "b", True),
            ("a?b", "ab", True),
            (".", "x", True),
            (".", "", False),
            ("[a-c]x", "bx", True),
            ("[a-c]x", "dx", False),
            ("[^a-c]", "d", True),
            ("[^a-c]", "b", False),
            ("a{3}", "aaa", True),
            ("a{3}", "aa", False),
            ("a{2,}", "aaaa", True),
            ("a{2,3}", "aaaa", False),
            ("(ab)+", "abab", True),
            ("(ab)+", "aba", False),
            ("\\d+", "123", True),
            ("\\d+", "12a", False),
            ("\\w+", "ab_1", True),
            ("\\W", "!", True),
            ("a\\.b", "a.b", True),
            ("a\\.b", "axb", False),
            ("(?:ab|cd)e", "cde", True),
            ("^anchored$", "anchored", True),
            ("[]a]", "]", True),
            ("\\n", "\n", True),
            ("", "", True),
            ("", "x", False),
        ],
    )
    def test_membership(self, pattern, word, expected):
        assert _matches(pattern, word) == expected

    @pytest.mark.parametrize(
        "pattern", ["(", "a)", "[abc", "a{2,1}", "*a", "a\\", "a{,}"]
    )
    def test_malformed(self, pattern):
        with pytest.raises(RegexParseError):
            rx.parse_regex(pattern)

    def test_paper_email_pattern(self):
        assert _matches("[A-z]*@ciws\\.cl", "john@ciws.cl")
        assert not _matches("[A-z]*@ciws\\.cl", "john@ciwsxcl")


class TestDFAOperations:
    def _dfa(self, pattern: str) -> rx.DFA:
        return rx.determinize(rx.nfa_from_regex(rx.parse_regex(pattern)))

    def test_determinize_preserves_language(self):
        dfa = self._dfa("a(b|c)*d")
        for word, expected in [
            ("ad", True),
            ("abcd", True),
            ("abd", True),
            ("a", False),
            ("abce", False),
        ]:
            assert dfa.accepts(word) == expected

    def test_complement(self):
        dfa = rx.dfa_complement(self._dfa("ab*"))
        assert not dfa.accepts("abb")
        assert dfa.accepts("ba")
        assert dfa.accepts("")

    def test_product_intersection(self):
        product = rx.dfa_product(self._dfa("[ab]*"), self._dfa(".{2}"))
        assert product.accepts("ab")
        assert not product.accepts("abc")
        assert not product.accepts("xy")

    def test_product_union_and_difference(self):
        union = rx.dfa_product(self._dfa("a"), self._dfa("b"), "union")
        assert union.accepts("a") and union.accepts("b")
        diff = rx.dfa_product(self._dfa("[ab]"), self._dfa("b"), "difference")
        assert diff.accepts("a") and not diff.accepts("b")

    def test_emptiness(self):
        empty = rx.dfa_product(self._dfa("[ab]"), self._dfa("[cd]"))
        assert rx.dfa_is_empty(empty)
        assert not rx.dfa_is_empty(self._dfa("a*"))

    def test_witness_is_shortest(self):
        assert rx.dfa_witness(self._dfa("a{3}")) == "aaa"
        assert rx.dfa_witness(self._dfa("x|yy")) == "x"
        assert rx.dfa_witness(self._dfa("a*")) == ""

    def test_count_words_finite(self):
        assert rx.dfa_count_words(self._dfa("a|b|c"), 10) == 3
        assert rx.dfa_count_words(self._dfa("[ab]{2}"), 10) == 4

    def test_count_words_infinite_hits_limit(self):
        assert rx.dfa_count_words(self._dfa("a*"), 7) == 7

    def test_count_words_empty(self):
        empty = rx.dfa_product(self._dfa("a"), self._dfa("b"))
        assert rx.dfa_count_words(empty, 5) == 0

    def test_sample_words_distinct_and_accepted(self):
        dfa = self._dfa("[ab]+")
        words = rx.dfa_sample_words(dfa, 6)
        assert len(words) == 6
        assert len(set(words)) == 6
        assert all(dfa.accepts(word) for word in words)


class TestRegexExtraction:
    @pytest.mark.parametrize(
        "pattern",
        ["a", "abc", "a|bc", "a*", "(ab)+c?", "[a-d]{2}", "x(y|z)*"],
    )
    def test_round_trip(self, pattern):
        dfa = rx.determinize(rx.nfa_from_regex(rx.parse_regex(pattern)))
        extracted = rx.dfa_to_regex_text(dfa)
        assert extracted is not None
        renfa = rx.nfa_from_regex(rx.parse_regex(extracted))
        for word in ["", "a", "b", "ab", "abc", "aa", "xyz", "xz", "ad", "cc"]:
            assert rx.nfa_matches(renfa, word) == dfa.accepts(word)

    def test_empty_language_extracts_none(self):
        empty = rx.dfa_product(
            rx.determinize(rx.nfa_from_regex(rx.parse_regex("a"))),
            rx.determinize(rx.nfa_from_regex(rx.parse_regex("b"))),
        )
        assert rx.dfa_to_regex_text(empty) is None


# A small strategy of safe regex patterns with their Python equivalent.
_pattern_fragments = st.sampled_from(
    ["a", "b", "c", "ab", "[ab]", "[a-c]", "a*", "b+", "c?", "(ab)*", "a|b"]
)


@st.composite
def regex_and_python(draw):
    parts = draw(st.lists(_pattern_fragments, min_size=1, max_size=4))
    return "".join(parts)


class TestAgainstPythonRe:
    @given(regex_and_python(), st.text(alphabet="abcx", max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_matches_python_fullmatch(self, pattern, word):
        ours = _matches(pattern, word)
        theirs = re.fullmatch(pattern, word) is not None
        assert ours == theirs

    @given(regex_and_python(), st.text(alphabet="abcx", max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_dfa_agrees_with_nfa(self, pattern, word):
        regex = rx.parse_regex(pattern)
        nfa = rx.nfa_from_regex(regex)
        dfa = rx.determinize(nfa)
        assert rx.nfa_matches(nfa, word) == dfa.accepts(word)
