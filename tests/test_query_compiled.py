"""The compiled-query subsystem: differential and batch correctness.

Compiled plans must be *indistinguishable* from the one-shot reference
path on every workload family: same node sets as the denotational
reference evaluator, same document order as a full preorder scan, same
Mongo semantics as per-document root evaluation.
"""

from __future__ import annotations

import random

import pytest

from repro.jnl import ast as jnl
from repro.jnl.evaluator import eval_binary, eval_unary
from repro.jnl.parser import parse_jnl
from repro.jsonpath import jsonpath_nodes, jsonpath_query
from repro.jsonpath.parser import parse_jsonpath
from repro.model.tree import JSONTree
from repro.mongo import compile_filter
from repro.query import (
    CompiledQuery,
    compile_formula,
    compile_mongo_find,
    compile_path_query,
    compile_query,
    evaluate_many,
    evaluate_queries,
    match_many,
    select_many,
    select_queries,
)
from repro.workloads import (
    balanced_tree,
    deep_chain,
    duplicate_heavy_array,
    people_collection,
    random_jnl_unary,
    random_tree,
    wide_array,
    wide_object,
)
from repro import api

FAMILY_TREES = [
    deep_chain(6),
    wide_object(8),
    wide_array(8, {"a": 1}),
    balanced_tree(2, 3),
    duplicate_heavy_array(6, 2),
    JSONTree.from_value(people_collection(3, seed=11)),
]


def _reference_nodes(tree: JSONTree, formula: jnl.Unary) -> frozenset[int]:
    return frozenset(eval_unary(tree, formula))


class TestCompiledQueryBasics:
    def test_requires_exactly_one_of_formula_and_path(self):
        with pytest.raises(ValueError):
            CompiledQuery("jnl", "x")
        with pytest.raises(ValueError):
            CompiledQuery(
                "jnl", "x", formula=jnl.Top(), path=jnl.Eps()
            )

    def test_automata_prebuilt_for_every_modal_subformula(self):
        query = compile_query(
            'has(.a) and has(.b[0]) and matches(.c, "x")', "jnl", cache=None
        )
        assert query.formula is not None
        # One automaton per distinct path operand.
        assert len(query.automata) == 3

    def test_path_query_compiles_own_automaton(self):
        query = compile_query(".a.b", "jnl-path", cache=None)
        assert query.path is not None
        assert query.path in query.automata

    def test_repr_mentions_dialect(self):
        assert "jsonpath" in repr(compile_query("$.a", "jsonpath", cache=None))

    def test_unknown_dialect_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            compile_query("$.a", "xpath", cache=None)


class TestDifferentialAgainstReference:
    """Compiled results == denotational reference on workload families."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_formulas_on_family_trees(self, seed):
        rng = random.Random(seed)
        formula = random_jnl_unary(rng, depth=3, allow_eqpath=(seed % 2 == 0))
        query = compile_formula(formula)
        for tree in FAMILY_TREES:
            expected = _reference_nodes(tree, formula)
            assert frozenset(query.select(tree)) == expected
            # Point evaluation agrees with the set-based verdict at
            # every node, not just the root.
            evaluator = query.evaluator(tree)
            for node in tree.nodes():
                assert evaluator.satisfies_at(node, formula) == (
                    node in expected
                ), (seed, node)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_formulas_on_random_trees(self, seed):
        rng = random.Random(100 + seed)
        formula = random_jnl_unary(rng, depth=3)
        tree = random_tree(seed)
        query = compile_formula(formula)
        assert frozenset(query.select(tree)) == _reference_nodes(tree, formula)

    def test_parsed_jnl_text_matches_reference(self, figure1_doc):
        text = "has(.name.first) and not has(.missing)"
        query = compile_query(text, "jnl", cache=None)
        expected = _reference_nodes(figure1_doc, parse_jnl(text))
        assert frozenset(query.select(figure1_doc)) == expected

    @pytest.mark.parametrize(
        "path_text",
        [
            "$.store.book[*].price",
            "$..price",
            "$.store.book[?(@.price > 8)].title",
            "$.store.*",
            "$.store.book[0:2]",
        ],
    )
    def test_jsonpath_matches_reference_relation(self, store_doc, path_text):
        path = parse_jsonpath(path_text)
        root = store_doc.root
        expected = {b for a, b in eval_binary(store_doc, path) if a == root}
        assert set(jsonpath_nodes(store_doc, path_text)) == expected

    def test_mongo_find_matches_reference_evaluation(self):
        docs = people_collection(40, seed=3)
        filter_doc = {
            "age": {"$gte": 30, "$lt": 70},
            "address.city": {"$in": ["Santiago", "Lille"]},
        }
        formula = compile_filter(filter_doc)
        collection = api.collection(docs)
        expected = [
            tree.to_value()
            for tree in collection.trees
            if tree.root in eval_unary(tree, formula)
        ]
        assert collection.find(filter_doc) == expected


class TestDocumentOrder:
    def test_select_is_preorder(self, store_doc):
        selected = jsonpath_nodes(store_doc, "$..price")
        full_scan = [
            node
            for node in store_doc.descendants(store_doc.root)
            if node in set(selected)
        ]
        assert selected == full_scan

    def test_document_order_method_matches_descendants(self, store_doc):
        nodes = list(store_doc.nodes())
        random.Random(0).shuffle(nodes)
        assert store_doc.document_order(nodes) == list(
            store_doc.descendants(store_doc.root)
        )

    def test_preorder_ranks_cached_and_consistent(self, figure1_doc):
        ranks = figure1_doc.preorder_ranks()
        assert ranks is figure1_doc.preorder_ranks()  # cached
        assert ranks[figure1_doc.root] == 0
        assert sorted(ranks) == list(range(len(figure1_doc)))


class TestBatchEvaluation:
    def test_one_query_many_trees(self):
        trees = [JSONTree.from_value(doc) for doc in people_collection(10, seed=5)]
        query = compile_query("$.name.first", "jsonpath", cache=None)
        assert evaluate_many(query, trees) == [query.values(t) for t in trees]
        assert select_many(query, trees) == [query.select(t) for t in trees]

    def test_match_many_agrees_with_single_matches(self):
        trees = [JSONTree.from_value(doc) for doc in people_collection(10, seed=6)]
        query = compile_mongo_find({"age": {"$gte": 40}}, cache=None)
        flags = match_many(query, trees)
        assert flags == [query.matches(t) for t in trees]
        assert any(flags) and not all(flags)

    def test_many_queries_one_tree_shared_traversal(self):
        tree = JSONTree.from_value({"library": people_collection(5, seed=9)})
        queries = [
            compile_query(text, "jsonpath", cache=None)
            for text in (
                "$.library[?(@.age >= 18)].name.first",
                "$.library[?(@.age >= 18)].age",
                "$.library[*].id",
            )
        ]
        shared = evaluate_queries(queries, tree)
        assert shared == [query.values(tree) for query in queries]
        shared_nodes = select_queries(queries, tree)
        assert shared_nodes == [query.select(tree) for query in queries]

    def test_batch_mixes_filters_and_selectors(self, figure1_doc):
        queries = [
            compile_query("has(.name)", "jnl", cache=None),
            compile_query(".hobbies[0]", "jnl-path", cache=None),
        ]
        values = evaluate_queries(queries, figure1_doc)
        assert values[1] == ["fishing"]
        assert figure1_doc.root in select_queries(queries, figure1_doc)[0]


class TestFrontendWrappers:
    def test_jsonpath_query_unchanged_semantics(self, store_doc):
        assert jsonpath_query(store_doc, "$.store.bicycle.price") == [19]

    def test_collection_count_and_find_trees(self):
        collection = api.collection(people_collection(20, seed=8))
        filter_doc = {"age": {"$gte": 50}}
        trees = collection.find_trees(filter_doc)
        assert len(trees) == collection.count(filter_doc)
        assert all(t.to_value()["age"] >= 50 for t in trees)

    def test_projection_still_applied(self):
        collection = api.collection([{"name": "Sue", "age": 3}])
        assert collection.find({}, {"name": 1}) == [{"name": "Sue"}]

    def test_compiled_plan_reusable_across_trees(self):
        query = compile_path_query(jnl.Compose(jnl.Key("a"), jnl.Key("b")))
        one = JSONTree.from_value({"a": {"b": 1}})
        two = JSONTree.from_value({"a": {"b": "x"}, "c": 0})
        assert query.values(one) == [1]
        assert query.values(two) == ["x"]
