"""Cross-subsystem integration tests.

Each test chains several subsystems the way a downstream user would:
schemas into logics into solvers into validators, front-ends into
evaluators, token streams into trees.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.jnl.efficient import evaluate_unary
from repro.jsl import RecursiveJSL
from repro.jsl.bottom_up import satisfies_recursive
from repro.jsl.evaluator import satisfies
from repro.jsl.satisfiability import jsl_satisfiable
from repro.model.tree import JSONTree
from repro.mongo import compile_filter
from repro.schema import (
    SchemaValidator,
    jsl_to_schema,
    parse_schema,
    schema_to_jsl,
)
from repro.streaming import StreamingJSLValidator
from repro.translate import jnl_to_jsl, jsl_to_jnl
from repro.workloads import TreeShape, people_collection, random_tree
from repro import api

PERSON_SCHEMA = {
    "type": "object",
    "required": ["id", "name", "age"],
    "properties": {
        "id": {"type": "number"},
        "name": {
            "type": "object",
            "required": ["first", "last"],
            "properties": {
                "first": {"type": "string"},
                "last": {"type": "string"},
            },
        },
        "age": {"type": "number", "minimum": 18, "maximum": 90},
        "hobbies": {
            "type": "array",
            "additionalItems": {"type": "string"},
            "uniqueItems": True,
        },
    },
}


class TestSchemaPipelines:
    def test_generated_collection_validates(self):
        schema = parse_schema(PERSON_SCHEMA)
        validator = SchemaValidator(schema)
        for person in people_collection(40, seed=3):
            assert validator.validate_value(person)

    def test_schema_witness_validates_against_schema(self):
        # schema -> JSL -> solver witness -> schema validator: closed loop.
        schema = parse_schema(PERSON_SCHEMA)
        result = jsl_satisfiable(schema_to_jsl(schema))
        assert result.satisfiable
        assert SchemaValidator(schema).validate(result.witness)

    def test_schema_conjunction_conflict_detected(self):
        # Two individually-satisfiable schemas with no common instance.
        s1 = schema_to_jsl(parse_schema({"type": "array", "items": [{}]}))
        s2 = schema_to_jsl(parse_schema({"type": "object"}))
        from repro.jsl import And

        result = jsl_satisfiable(And(s1, s2))
        assert not result.satisfiable and result.complete

    def test_double_translation_pipeline(self):
        # schema -> JSL -> JNL -> evaluate == direct validation.
        schema = parse_schema(PERSON_SCHEMA)
        formula = schema_to_jsl(schema)
        assert not isinstance(formula, RecursiveJSL)
        jnl_formula = jsl_to_jnl(formula)
        validator = SchemaValidator(schema)
        for seed in range(10):
            tree = random_tree(seed, TreeShape(max_depth=3, max_children=4))
            assert (
                tree.root in evaluate_unary(tree, jnl_formula)
            ) == validator.validate(tree)

    def test_schema_roundtrip_through_jnl(self):
        # JSL -> schema -> JSL -> JNL stays equivalent on documents.
        from repro.jsl.parser import parse_jsl_formula

        formula = parse_jsl_formula(
            "some(.k, number and multipleof(3)) and maxch(3)"
        )
        back = schema_to_jsl(jsl_to_schema(formula))
        for seed in range(10):
            tree = random_tree(
                seed + 40, TreeShape(max_depth=3, max_children=3)
            )
            assert satisfies(tree, formula) == satisfies(tree, back)


class TestFrontEndPipelines:
    def test_find_filter_via_jsl_translation(self):
        # Mongo filter -> JNL -> JSL: all three verdicts agree.
        filter_doc = {"age": {"$gte": 30}, "name.first": {"$regex": "^S"}}
        formula = compile_filter(filter_doc)
        translated = jnl_to_jsl(formula)
        people = people_collection(30, seed=8)
        collection = api.collection(people)
        expected_ids = {doc["id"] for doc in collection.find(filter_doc)}
        for person in people:
            tree = JSONTree.from_value(person)
            via_jnl = tree.root in evaluate_unary(tree, formula)
            if isinstance(translated, RecursiveJSL):
                via_jsl = satisfies_recursive(tree, translated)
            else:
                via_jsl = satisfies(tree, translated)
            assert via_jnl == via_jsl == (person["id"] in expected_ids)

    def test_jsonpath_agrees_with_mongo_on_presence(self):
        from repro.jsonpath import jsonpath_query

        people = people_collection(25, seed=12)
        collection = api.collection(people)
        with_yoga_mongo = {
            doc["id"]
            for doc in collection.find(
                {"hobbies": {"$elemMatch": {"$eq": "yoga"}}}
            )
        }
        with_yoga_jsonpath = {
            person["id"]
            for person in people
            if jsonpath_query(
                JSONTree.from_value(person),
                '$.hobbies[?(@ == "yoga")]',
            )
        }
        assert with_yoga_mongo == with_yoga_jsonpath


class TestStreamingPipelines:
    def test_streaming_agrees_with_schema_validator(self):
        # A deterministic schema validated both ways over a collection.
        schema = parse_schema(
            {
                "type": "object",
                "required": ["id"],
                "properties": {
                    "id": {"type": "number"},
                    "age": {"type": "number", "minimum": 18, "maximum": 90},
                },
            }
        )
        formula = schema_to_jsl(schema)
        stream_validator = StreamingJSLValidator(formula)
        validator = SchemaValidator(schema)
        for person in people_collection(30, seed=21):
            text = json.dumps(person)
            assert stream_validator.validate_text(text) == validator.validate(
                JSONTree.from_value(person)
            )

    def test_streaming_rejects_duplicate_keys_like_model(self):
        from repro.errors import DuplicateKeyError

        text = '{"k": 1, "k": 2}'
        with pytest.raises(DuplicateKeyError):
            StreamingJSLValidator(
                schema_to_jsl(parse_schema({"type": "object"}))
            ).validate_text(text)
        with pytest.raises(DuplicateKeyError):
            JSONTree.from_json(text)


class TestSolverAgainstEvaluatorsAtScale:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_schema_satisfiability_consistency(self, seed):
        # If the solver finds a witness for a schema's JSL form, the
        # schema validator must accept it; if a random doc validates,
        # the solver must not claim complete UNSAT.
        from repro.workloads import random_schema_value

        rng = random.Random(seed + 2024)
        schema = parse_schema(random_schema_value(rng, depth=2))
        formula = schema_to_jsl(schema)
        validator = SchemaValidator(schema)
        result = jsl_satisfiable(formula)
        if result.satisfiable:
            assert validator.validate(result.witness)
        else:
            for doc_seed in range(10):
                tree = random_tree(
                    doc_seed, TreeShape(max_depth=3, max_children=3)
                )
                if validator.validate(tree):
                    assert not result.complete
                    break
